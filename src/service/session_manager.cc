#include "service/session_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/json.h"
#include "core/session_journal.h"

namespace falcon {
namespace {

constexpr size_t kSeqWindow = 32;

StatusOr<SearchKind> ParseSearchKind(const std::string& name) {
  for (SearchKind k :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline}) {
    if (name == SearchKindName(k)) return k;
  }
  return Status::InvalidArgument("unknown search algorithm: " + name);
}

/// fsyncs the journal directory so freshly created/renamed/unlinked entry
/// names survive a crash. Fault site: service.journal_dir_sync.
Status SyncJournalDir(const std::string& dir) {
  FALCON_RETURN_IF_ERROR(
      FaultInjector::Global().Hit("service.journal_dir_sync"));
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open journal dir " + dir + ": " +
                           std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync journal dir " + dir + ": " +
                           std::strerror(saved));
  }
  return Status::Ok();
}

Status WriteFileDurable(const std::string& path, const std::string& body) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < body.size()) {
    ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IoError("write " + path + ": " + std::strerror(saved));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IoError("fsync " + path + ": " + std::strerror(saved));
  }
  ::close(fd);
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IoError("read " + path + ": " + std::strerror(saved));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

/// Parses the numeric part of an "s-<n>" session id (0 when malformed).
uint64_t SessionIdNumber(const std::string& id) {
  if (id.size() < 3 || id.compare(0, 2, "s-") != 0) return 0;
  uint64_t n = 0;
  for (size_t i = 2; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    n = n * 10 + static_cast<uint64_t>(id[i] - '0');
  }
  return n;
}

}  // namespace

SessionManager::SessionManager(ServiceLimits limits)
    : limits_(std::move(limits)),
      shards_(std::max<size_t>(1, limits_.session_shards)) {}

SessionManager::~SessionManager() { CloseAll(); }

SessionManager::Shard& SessionManager::ShardFor(const std::string& id) {
  // FNV-1a over the id; session ids are "s-<n>" so the low bytes carry all
  // the entropy and a multiplicative hash spreads them well across stripes.
  uint64_t h = 14695981039346656037ull;
  for (char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return shards_[h % shards_.size()];
}

const SessionManager::Shard& SessionManager::ShardFor(
    const std::string& id) const {
  return const_cast<SessionManager*>(this)->ShardFor(id);
}

std::string SessionManager::JournalPath(const std::string& id) const {
  return limits_.journal_dir + "/" + id + ".journal";
}

std::string SessionManager::MetaPath(const std::string& id) const {
  return limits_.journal_dir + "/" + id + ".meta";
}

StatusOr<std::shared_ptr<const CleaningWorkload>> SessionManager::GetBase(
    const std::string& dataset, double scale, std::string* key_out) {
  // Key includes the scale so differently-sized instances of one dataset
  // coexist; %g keeps the key stable for equal doubles.
  char key[128];
  std::snprintf(key, sizeof key, "%s@%g", dataset.c_str(), scale);
  if (key_out != nullptr) *key_out = key;
  {
    std::lock_guard<std::mutex> lock(base_mu_);
    auto it = bases_.find(key);
    if (it != bases_.end()) return it->second.workload;
  }
  // Build outside the lock: workload generation takes seconds at scale and
  // must not block unrelated sessions. A racing open of the same dataset
  // builds twice; first insert wins and both get the same table (and, via
  // AttachBaseLocked, the same shared tier keyed on the winner's
  // snapshot id).
  FALCON_ASSIGN_OR_RETURN(CleaningWorkload w,
                          MakeCleaningWorkload(dataset, scale));
  auto base = std::make_shared<const CleaningWorkload>(std::move(w));
  std::lock_guard<std::mutex> lock(base_mu_);
  auto [it, inserted] = bases_.emplace(key, BaseEntry{});
  if (inserted) it->second.workload = std::move(base);
  return it->second.workload;
}

std::shared_ptr<SharedBaseCache> SessionManager::AttachBaseLocked(
    const std::string& key) {
  auto it = bases_.find(key);
  if (it == bases_.end()) return nullptr;
  BaseEntry& entry = it->second;
  ++entry.live_sessions;
  entry.last_touch_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  if (!limits_.shared_base_cache) return nullptr;
  if (entry.cache == nullptr) {
    entry.cache = std::make_shared<SharedBaseCache>(
        entry.workload->snapshot_id, entry.workload->dirty.num_cols(),
        limits_.shared_cache_budget_bytes);
  }
  return entry.cache;
}

void SessionManager::ReleaseBaseLocked(const std::string& key) {
  auto it = bases_.find(key);
  if (it == bases_.end()) return;
  BaseEntry& entry = it->second;
  if (entry.live_sessions > 0) --entry.live_sessions;
  if (entry.live_sessions == 0 && entry.cache != nullptr) {
    // Last session on this base: drop the tier (retire the generation so
    // lingering pins in stragglers stay valid but nothing new is served).
    // The workload stays cached for the next open.
    entry.cache->Invalidate();
    entry.cache.reset();
  }
}

void SessionManager::EnforceSharedBudgetLocked() {
  if (limits_.shared_cache_budget_bytes == 0) return;
  for (;;) {
    size_t total = 0;
    BaseEntry* oldest = nullptr;
    for (auto& [key, entry] : bases_) {
      if (entry.cache == nullptr) continue;
      size_t bytes = entry.cache->resident_bytes();
      total += bytes;
      if (bytes > 0 && (oldest == nullptr ||
                        entry.last_touch_ns < oldest->last_touch_ns)) {
        oldest = &entry;
      }
    }
    if (total <= limits_.shared_cache_budget_bytes || oldest == nullptr) {
      return;
    }
    // Whole-cache LRU: sessions on the invalidated base keep their pins
    // (RCU grace) and refill organically; the epoch bump rejects any
    // publish computed against the retired generation.
    oldest->cache->Invalidate();
  }
}

void SessionManager::TouchBase(const std::string& key) {
  std::lock_guard<std::mutex> lock(base_mu_);
  auto it = bases_.find(key);
  if (it != bases_.end()) {
    it->second.last_touch_ns =
        std::chrono::steady_clock::now().time_since_epoch().count();
  }
  EnforceSharedBudgetLocked();
}

StatusOr<std::shared_ptr<SessionManager::ServiceSession>>
SessionManager::Build(const OpenParams& params, const std::string& id) {
  FALCON_ASSIGN_OR_RETURN(SearchKind kind, ParseSearchKind(params.algorithm));
  std::string base_key;
  FALCON_ASSIGN_OR_RETURN(auto base,
                          GetBase(params.dataset, params.scale, &base_key));

  auto s = std::make_shared<ServiceSession>(base);
  s->id = id;
  s->dataset = params.dataset;
  s->params = params;
  s->base_key = base_key;
  // Attach to the base's shared read tier now (refcounted): the session
  // options below carry the cache pointer into the CleaningSession. Every
  // exit path that fails to register this session must ReleaseBaseLocked.
  {
    std::lock_guard<std::mutex> lock(base_mu_);
    s->shared_cache = AttachBaseLocked(base_key);
  }
  // The oracle mirrors the session's internal construction
  // (question_mistake_prob, seed + 1) so an answer-free service run is
  // bit-identical to a serial RunCleaning with the same options.
  s->oracle = std::make_unique<ScriptedOracle>(
      &base->clean, params.question_mistake_prob, params.seed + 1);
  s->algorithm = MakeSearchAlgorithm(kind);

  SessionOptions options;
  options.budget = params.budget;
  options.seed = params.seed;
  options.question_mistake_prob = params.question_mistake_prob;
  options.update_mistake_prob = params.update_mistake_prob;
  options.posting_delta = params.posting_delta;
  options.compressed_rowsets = params.compressed_rowsets;
  options.oracle = s->oracle.get();
  if (s->shared_cache != nullptr) {
    options.shared_cache = s->shared_cache.get();
    options.base_snapshot_id = base->snapshot_id;
  }
  if (limits_.posting_budget_bytes > 0) {
    options.posting_budget_bytes =
        limits_.posting_budget_bytes / limits_.max_sessions;
  }
  if (!limits_.journal_dir.empty()) {
    options.journal_path = JournalPath(id);
  }
  s->session = std::make_unique<CleaningSession>(
      &base->clean, &s->working, s->algorithm.get(), options);
  s->Touch();
  return s;
}

Status SessionManager::WriteMeta(const ServiceSession& s) {
  if (limits_.journal_dir.empty()) return Status::Ok();
  JsonValue meta = JsonValue::Object();
  meta.Set("id", s.id);
  meta.Set("dataset", s.params.dataset);
  meta.Set("scale", s.params.scale);
  meta.Set("seed", static_cast<int64_t>(s.params.seed));
  meta.Set("budget", s.params.budget);
  meta.Set("question_mistake_prob", s.params.question_mistake_prob);
  meta.Set("update_mistake_prob", s.params.update_mistake_prob);
  meta.Set("algorithm", s.params.algorithm);
  meta.Set("posting_delta", s.params.posting_delta);
  meta.Set("compressed_rowsets", s.params.compressed_rowsets);
  FALCON_RETURN_IF_ERROR(
      WriteFileDurable(MetaPath(s.id), meta.Serialize() + "\n"));
  return SyncJournalDir(limits_.journal_dir);
}

void SessionManager::DeleteArtifacts(const std::string& id) {
  if (limits_.journal_dir.empty()) return;
  ::unlink(JournalPath(id).c_str());
  ::unlink(MetaPath(id).c_str());
  // Best-effort: a failed directory sync here only delays the cleanup
  // until the next startup scan notices the stale entries.
  Status st = SyncJournalDir(limits_.journal_dir);
  (void)st;
}

StatusOr<std::string> SessionManager::Open(const OpenParams& params) {
  // Reserve an admission slot atomically; every failure path below hands
  // it back, so the count can never go negative or double-admit.
  if (session_count_.fetch_add(1, std::memory_order_acq_rel) >=
      limits_.max_sessions) {
    session_count_.fetch_sub(1, std::memory_order_acq_rel);
    return Status::Unavailable(
        "session table full (" + std::to_string(limits_.max_sessions) +
        " live sessions); close one or retry later");
  }
  std::string id =
      "s-" + std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  StatusOr<std::shared_ptr<ServiceSession>> built = Build(params, id);
  if (!built.ok()) {
    session_count_.fetch_sub(1, std::memory_order_acq_rel);
    return built.status();
  }
  std::shared_ptr<ServiceSession> s = std::move(built).value();
  if (Status meta = WriteMeta(*s); !meta.ok()) {
    // Never leave a half-durable meta behind: an orphan would re-register
    // as a fresh session at the next startup scan.
    DeleteArtifacts(id);
    {
      std::lock_guard<std::mutex> lock(base_mu_);
      ReleaseBaseLocked(s->base_key);
    }
    session_count_.fetch_sub(1, std::memory_order_acq_rel);
    return meta;
  }

  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.sessions.emplace(s->id, s);
  return s->id;
}

StatusOr<std::string> SessionManager::RecoverOne(const std::string& id) {
  // Same reservation discipline as Open: take the admission slot before
  // the (expensive) rebuild, release it on every non-registering path.
  if (session_count_.fetch_add(1, std::memory_order_acq_rel) >=
      limits_.max_sessions) {
    session_count_.fetch_sub(1, std::memory_order_acq_rel);
    {
      // The table may be full *because* this session is already live
      // (raced resume): that is success, not exhaustion.
      Shard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.sessions.count(id) > 0) return id;
    }
    return Status::Unavailable("session table full; cannot resume " + id);
  }
  auto release = [this] {
    session_count_.fetch_sub(1, std::memory_order_acq_rel);
  };
  StatusOr<std::string> body_or = ReadFileToString(MetaPath(id));
  if (!body_or.ok()) {
    release();
    return body_or.status();
  }
  std::string body = std::move(body_or).value();
  StatusOr<JsonValue> meta_or = JsonValue::Parse(body);
  if (!meta_or.ok()) {
    release();
    return meta_or.status();
  }
  JsonValue meta = std::move(meta_or).value();
  OpenParams params;
  params.dataset = meta.GetString("dataset", params.dataset);
  params.scale = meta.GetDouble("scale", params.scale);
  params.seed = static_cast<uint64_t>(
      meta.GetInt("seed", static_cast<int64_t>(params.seed)));
  params.budget = static_cast<size_t>(
      meta.GetInt("budget", static_cast<int64_t>(params.budget)));
  params.question_mistake_prob =
      meta.GetDouble("question_mistake_prob", params.question_mistake_prob);
  params.update_mistake_prob =
      meta.GetDouble("update_mistake_prob", params.update_mistake_prob);
  params.algorithm = meta.GetString("algorithm", params.algorithm);
  params.posting_delta = meta.GetBool("posting_delta", params.posting_delta);
  params.compressed_rowsets =
      meta.GetBool("compressed_rowsets", params.compressed_rowsets);

  StatusOr<std::shared_ptr<ServiceSession>> built = Build(params, id);
  if (!built.ok()) {
    release();
    return built.status();
  }
  std::shared_ptr<ServiceSession> s = std::move(built).value();
  // Replays the journaled prefix (tolerant of a torn tail) and completes
  // any interrupted episode deterministically, then stops so the client
  // resumes driving with `step`. A meta without a journal (the session
  // never ran an episode) starts fresh without running one.
  if (Status replay = s->session->RecoverToReplayEnd().status();
      !replay.ok()) {
    {
      std::lock_guard<std::mutex> lock(base_mu_);
      ReleaseBaseLocked(s->base_key);
    }
    release();
    return replay;
  }
  s->Touch();

  // Keep fresh ids ahead of every recovered id (lock-free CAS catch-up).
  uint64_t n = SessionIdNumber(id);
  uint64_t cur = next_id_.load(std::memory_order_relaxed);
  while (n >= cur && !next_id_.compare_exchange_weak(
                         cur, n + 1, std::memory_order_relaxed)) {
  }

  bool raced = false;
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    raced = !shard.sessions.emplace(id, s).second;
  }
  if (raced) {
    // Raced with another resume: theirs is registered, ours is discarded.
    {
      std::lock_guard<std::mutex> lock(base_mu_);
      ReleaseBaseLocked(s->base_key);
    }
    release();
    return id;
  }
  recovered_sessions_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

size_t SessionManager::RecoverSessions() {
  if (limits_.journal_dir.empty()) return 0;
  DIR* dir = ::opendir(limits_.journal_dir.c_str());
  if (dir == nullptr) return 0;
  std::vector<std::string> meta_ids;
  std::vector<std::string> journal_ids;
  while (struct dirent* e = ::readdir(dir)) {
    std::string name = e->d_name;
    auto strip = [&name](const char* suffix) -> std::string {
      size_t len = std::strlen(suffix);
      if (name.size() <= len ||
          name.compare(name.size() - len, len, suffix) != 0) {
        return "";
      }
      return name.substr(0, name.size() - len);
    };
    if (std::string id = strip(".meta"); !id.empty()) meta_ids.push_back(id);
    if (std::string id = strip(".journal"); !id.empty()) {
      journal_ids.push_back(id);
    }
  }
  ::closedir(dir);

  size_t recovered = 0;
  for (const std::string& id : meta_ids) {
    {
      Shard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.sessions.count(id) > 0) continue;
    }
    // A failed recovery (corrupt meta, unknown dataset) skips the session
    // but retains its files for inspection; it will be retried next start.
    if (RecoverOne(id).ok()) ++recovered;
  }
  // A journal without a meta sidecar is a stale leftover (the meta is
  // written before the journal's first record and deleted after the
  // journal on clean close): delete it.
  bool deleted_stale = false;
  for (const std::string& id : journal_ids) {
    bool has_meta = false;
    for (const std::string& m : meta_ids) {
      if (m == id) {
        has_meta = true;
        break;
      }
    }
    if (!has_meta) {
      ::unlink(JournalPath(id).c_str());
      deleted_stale = true;
    }
  }
  if (deleted_stale) {
    Status st = SyncJournalDir(limits_.journal_dir);
    (void)st;
  }
  return recovered;
}

StatusOr<std::string> SessionManager::Resume(const std::string& id) {
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.sessions.count(id) > 0) return id;
  }
  if (limits_.journal_dir.empty()) {
    return Status::NotFound("no such session: " + id);
  }
  return RecoverOne(id);
}

StatusOr<std::shared_ptr<SessionManager::ServiceSession>>
SessionManager::Lookup(const std::string& id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return Status::NotFound("no such session: " + id);
  }
  return it->second;
}

SessionStatus SessionManager::Snapshot(ServiceSession& s) {
  SessionStatus st;
  st.id = s.id;
  st.dataset = s.dataset;
  st.finished = s.session->finished();
  st.pending_cells = s.session->pending_cells();
  st.queued_verdicts = s.oracle->queued();
  st.repairs = s.session->log().size();
  st.table_crc = TableContentsCrc(s.working);
  st.last_seq = s.last_seq;
  st.metrics = s.session->metrics();
  s.posting_resident_bytes.store(st.metrics.posting_resident_bytes,
                                 std::memory_order_relaxed);
  s.rows_appended.store(st.metrics.rows_appended, std::memory_order_relaxed);
  s.append_batches.store(st.metrics.append_batches,
                         std::memory_order_relaxed);
  return st;
}

StatusOr<SessionStatus> SessionManager::Mutate(
    const std::string& id, uint64_t seq,
    const std::function<StatusOr<SessionStatus>(ServiceSession&)>& op) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  if (seq > 0) {
    if (seq <= s->last_seq) {
      // A retry of an already-applied request: answer from the cached
      // window without re-executing (errors replay too — the retry sees
      // exactly what the original caller saw).
      for (const auto& [cached_seq, response] : s->seq_window) {
        if (cached_seq == seq) return response;
      }
      return Status::FailedPrecondition(
          "seq " + std::to_string(seq) + " too old for session " + id +
          " (last_seq " + std::to_string(s->last_seq) +
          "; response evicted from the idempotency window)");
    }
    if (seq != s->last_seq + 1) {
      return Status::FailedPrecondition(
          "seq gap for session " + id + ": got " + std::to_string(seq) +
          ", expected " + std::to_string(s->last_seq + 1));
    }
  }
  // Advance before executing so the op's snapshot reports this request's
  // seq as applied.
  if (seq > 0) s->last_seq = seq;
  StatusOr<SessionStatus> result = op(*s);
  s->Touch();
  // Keep the base's LRU clock current and the aggregate shared budget
  // enforced (ops are where shared-tier publishes happen).
  TouchBase(s->base_key);
  if (seq > 0) {
    s->seq_window.emplace_back(seq, result);
    while (s->seq_window.size() > kSeqWindow) s->seq_window.pop_front();
  }
  return result;
}

StatusOr<SessionStatus> SessionManager::Step(const std::string& id,
                                             size_t max_episodes,
                                             uint64_t seq) {
  return Mutate(id, seq,
                [max_episodes](ServiceSession& s) -> StatusOr<SessionStatus> {
                  auto metrics = s.session->RunSteps(max_episodes);
                  FALCON_RETURN_IF_ERROR(metrics.status());
                  return Snapshot(s);
                });
}

StatusOr<SessionStatus> SessionManager::UpdateCell(const std::string& id,
                                                   uint32_t row, uint32_t col,
                                                   const std::string& value,
                                                   uint64_t seq) {
  return Mutate(id, seq,
                [row, col, &value](ServiceSession& s)
                    -> StatusOr<SessionStatus> {
                  FALCON_RETURN_IF_ERROR(
                      s.session->SubmitUpdate(row, col, value));
                  return Snapshot(s);
                });
}

StatusOr<SessionStatus> SessionManager::Answer(const std::string& id,
                                               bool valid, uint64_t seq) {
  return Mutate(id, seq,
                [valid](ServiceSession& s) -> StatusOr<SessionStatus> {
                  s.oracle->QueueVerdict(valid);
                  return Snapshot(s);
                });
}

StatusOr<SessionStatus> SessionManager::Info(const std::string& id) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  s->Touch();
  return Snapshot(*s);
}

StatusOr<SessionStatus> SessionManager::Retract(const std::string& id,
                                                size_t repair_index,
                                                uint64_t seq) {
  return Mutate(id, seq,
                [repair_index](ServiceSession& s) -> StatusOr<SessionStatus> {
                  FALCON_RETURN_IF_ERROR(
                      s.session->RetractRule(repair_index));
                  return Snapshot(s);
                });
}

Status SessionManager::CloseInternal(const std::string& id,
                                     bool delete_artifacts) {
  std::shared_ptr<ServiceSession> s;
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) {
      return Status::NotFound("no such session: " + id);
    }
    s = std::move(it->second);
    shard.sessions.erase(it);
  }
  // The erase above removed the session from every observer's view; hand
  // the admission slot back now so a waiting open can claim it while the
  // teardown below (which can fsync) runs.
  session_count_.fetch_sub(1, std::memory_order_acq_rel);
  // Wait for any in-flight operation, then tear the session down while we
  // still hold its lock; stragglers holding the shared_ptr see `closed`.
  std::lock_guard<std::mutex> lock(s->mu);
  s->closed = true;
  s->session.reset();
  s->algorithm.reset();
  s->oracle.reset();
  // A clean close is final: its journal + meta would otherwise be replayed
  // as an orphan at the next startup scan. Eviction and graceful shutdown
  // keep them so the session stays resumable.
  if (delete_artifacts) DeleteArtifacts(id);
  // The session (and its shared-tier pins) is gone: release the base.
  // The last close on a base drops its shared cache. Lock order is
  // s->mu → base_mu_ here, matching Mutate's op → TouchBase sequence;
  // base_mu_ is never held while acquiring a session or shard mutex.
  {
    std::lock_guard<std::mutex> base_lock(base_mu_);
    ReleaseBaseLocked(s->base_key);
  }
  return Status::Ok();
}

Status SessionManager::Close(const std::string& id) {
  return CloseInternal(id, /*delete_artifacts=*/true);
}

size_t SessionManager::EvictIdle() {
  if (limits_.idle_timeout_s <= 0) return 0;
  const int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const int64_t timeout_ns =
      static_cast<int64_t>(limits_.idle_timeout_s * 1e9);
  std::vector<std::string> idle;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, s] : shard.sessions) {
      if (now_ns - s->last_active_ns.load(std::memory_order_relaxed) >
          timeout_ns) {
        idle.push_back(id);
      }
    }
  }
  size_t evicted = 0;
  for (const std::string& id : idle) {
    // Retain artifacts: an evicted session resumes lazily from disk.
    evicted += CloseInternal(id, /*delete_artifacts=*/false).ok();
  }
  return evicted;
}

void SessionManager::CloseAll() {
  std::vector<std::string> ids;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, s] : shard.sessions) ids.push_back(id);
  }
  for (const std::string& id : ids) {
    // Graceful drain retains journals + metas: sessions survive a daemon
    // restart and are re-registered by the startup scan.
    Status st = CloseInternal(id, /*delete_artifacts=*/false);
    (void)st;
  }
}

ServiceHealth SessionManager::Health() const {
  ServiceHealth h;
  h.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
                   .count();
  h.max_sessions = limits_.max_sessions;
  h.recovered_sessions = recovered_sessions_.load(std::memory_order_relaxed);
  // Per-shard locking: the totals are a consistent sum of per-shard
  // snapshots (each shard's count is exact at the instant its lock is
  // held), so concurrent opens/closes can make the sum land anywhere
  // between the start and end population — but never negative and never
  // double-counting a session.
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    h.live_sessions += shard.sessions.size();
    for (const auto& [id, s] : shard.sessions) {
      h.posting_resident_bytes +=
          s->posting_resident_bytes.load(std::memory_order_relaxed);
      h.rows_appended += s->rows_appended.load(std::memory_order_relaxed);
      h.append_batches += s->append_batches.load(std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(base_mu_);
  // Shared tiers are counted once per base — never per attached session —
  // so ops dashboards see true process residency, not N× the same bitmap.
  for (const auto& [key, entry] : bases_) {
    if (entry.cache == nullptr) continue;
    ++h.shared_bases;
    SharedBaseCacheStats cs = entry.cache->Stats();
    h.shared_resident_bytes += cs.resident_bytes;
    h.shared_entries += cs.entries;
    h.shared_hits += cs.posting_hits + cs.intersection_hits;
    h.shared_misses += cs.posting_misses + cs.intersection_misses;
  }
  return h;
}

size_t SessionManager::active_sessions() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.sessions.size();
  }
  return total;
}

}  // namespace falcon
