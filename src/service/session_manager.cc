#include "service/session_manager.h"

#include <utility>
#include <vector>

#include "core/session_journal.h"

namespace falcon {
namespace {

StatusOr<SearchKind> ParseSearchKind(const std::string& name) {
  for (SearchKind k :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline}) {
    if (name == SearchKindName(k)) return k;
  }
  return Status::InvalidArgument("unknown search algorithm: " + name);
}

}  // namespace

SessionManager::SessionManager(ServiceLimits limits)
    : limits_(std::move(limits)) {}

SessionManager::~SessionManager() { CloseAll(); }

StatusOr<std::shared_ptr<const CleaningWorkload>> SessionManager::GetBase(
    const std::string& dataset, double scale) {
  // Key includes the scale so differently-sized instances of one dataset
  // coexist; %g keeps the key stable for equal doubles.
  char key[128];
  std::snprintf(key, sizeof key, "%s@%g", dataset.c_str(), scale);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bases_.find(key);
    if (it != bases_.end()) return it->second;
  }
  // Build outside the lock: workload generation takes seconds at scale and
  // must not block unrelated sessions. A racing open of the same dataset
  // builds twice; first insert wins and both get the same table.
  FALCON_ASSIGN_OR_RETURN(CleaningWorkload w,
                          MakeCleaningWorkload(dataset, scale));
  auto base = std::make_shared<const CleaningWorkload>(std::move(w));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = bases_.emplace(key, std::move(base));
  return it->second;
}

StatusOr<std::string> SessionManager::Open(const OpenParams& params) {
  FALCON_ASSIGN_OR_RETURN(SearchKind kind, ParseSearchKind(params.algorithm));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.size() >= limits_.max_sessions) {
      return Status::Unavailable(
          "session table full (" + std::to_string(limits_.max_sessions) +
          " live sessions); close one or retry later");
    }
  }
  FALCON_ASSIGN_OR_RETURN(auto base, GetBase(params.dataset, params.scale));

  auto s = std::make_shared<ServiceSession>(base);
  s->dataset = params.dataset;
  // The oracle mirrors the session's internal construction
  // (question_mistake_prob, seed + 1) so an answer-free service run is
  // bit-identical to a serial RunCleaning with the same options.
  s->oracle = std::make_unique<ScriptedOracle>(
      &base->clean, params.question_mistake_prob, params.seed + 1);
  s->algorithm = MakeSearchAlgorithm(kind);

  SessionOptions options;
  options.budget = params.budget;
  options.seed = params.seed;
  options.question_mistake_prob = params.question_mistake_prob;
  options.update_mistake_prob = params.update_mistake_prob;
  options.oracle = s->oracle.get();
  if (limits_.posting_budget_bytes > 0) {
    options.posting_budget_bytes =
        limits_.posting_budget_bytes / limits_.max_sessions;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= limits_.max_sessions) {
    return Status::Unavailable("session table full");
  }
  s->id = "s-" + std::to_string(next_id_++);
  if (!limits_.journal_dir.empty()) {
    options.journal_path = limits_.journal_dir + "/" + s->id + ".journal";
  }
  s->session = std::make_unique<CleaningSession>(
      &base->clean, &s->working, s->algorithm.get(), options);
  s->Touch();
  sessions_.emplace(s->id, s);
  return s->id;
}

StatusOr<std::shared_ptr<SessionManager::ServiceSession>>
SessionManager::Lookup(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + id);
  }
  return it->second;
}

SessionStatus SessionManager::Snapshot(const ServiceSession& s) {
  SessionStatus st;
  st.id = s.id;
  st.dataset = s.dataset;
  st.finished = s.session->finished();
  st.pending_cells = s.session->pending_cells();
  st.queued_verdicts = s.oracle->queued();
  st.repairs = s.session->log().size();
  st.table_crc = TableContentsCrc(s.working);
  st.metrics = s.session->metrics();
  return st;
}

StatusOr<SessionStatus> SessionManager::Step(const std::string& id,
                                             size_t max_episodes) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  auto metrics = s->session->RunSteps(max_episodes);
  s->Touch();
  FALCON_RETURN_IF_ERROR(metrics.status());
  return Snapshot(*s);
}

Status SessionManager::UpdateCell(const std::string& id, uint32_t row,
                                  uint32_t col, const std::string& value) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  FALCON_RETURN_IF_ERROR(s->session->SubmitUpdate(row, col, value));
  s->Touch();
  return Status::Ok();
}

Status SessionManager::Answer(const std::string& id, bool valid) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  s->oracle->QueueVerdict(valid);
  s->Touch();
  return Status::Ok();
}

StatusOr<SessionStatus> SessionManager::Info(const std::string& id) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  s->Touch();
  return Snapshot(*s);
}

Status SessionManager::Retract(const std::string& id, size_t repair_index) {
  FALCON_ASSIGN_OR_RETURN(auto s, Lookup(id));
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->closed) return Status::NotFound("session closed: " + id);
  FALCON_RETURN_IF_ERROR(s->session->RetractRule(repair_index));
  s->Touch();
  return Status::Ok();
}

Status SessionManager::Close(const std::string& id) {
  std::shared_ptr<ServiceSession> s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no such session: " + id);
    }
    s = std::move(it->second);
    sessions_.erase(it);
  }
  // Wait for any in-flight operation, then tear the session down while we
  // still hold its lock; stragglers holding the shared_ptr see `closed`.
  std::lock_guard<std::mutex> lock(s->mu);
  s->closed = true;
  s->session.reset();
  s->algorithm.reset();
  s->oracle.reset();
  return Status::Ok();
}

size_t SessionManager::EvictIdle() {
  if (limits_.idle_timeout_s <= 0) return 0;
  const int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const int64_t timeout_ns =
      static_cast<int64_t>(limits_.idle_timeout_s * 1e9);
  std::vector<std::string> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, s] : sessions_) {
      if (now_ns - s->last_active_ns.load(std::memory_order_relaxed) >
          timeout_ns) {
        idle.push_back(id);
      }
    }
  }
  size_t evicted = 0;
  for (const std::string& id : idle) {
    evicted += Close(id).ok();
  }
  return evicted;
}

void SessionManager::CloseAll() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, s] : sessions_) ids.push_back(id);
  }
  for (const std::string& id : ids) {
    Status st = Close(id);
    (void)st;
  }
}

size_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace falcon
