#include "service/protocol.h"

#include <cstdint>
#include <limits>

namespace falcon {
namespace {

JsonValue OkResponse() {
  JsonValue r = JsonValue::Object();
  r.Set("ok", true);
  return r;
}

StatusOr<std::string> RequiredSession(const JsonValue& request) {
  std::string id = request.GetString("session");
  if (id.empty()) {
    return Status::InvalidArgument("missing required field: session");
  }
  return id;
}

StatusOr<uint32_t> Uint32Field(const JsonValue& request, const char* key) {
  const JsonValue* v = request.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument(std::string("missing numeric field: ") +
                                   key);
  }
  int64_t raw = v->AsInt();
  if (raw < 0 || raw > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(std::string("field out of range: ") + key);
  }
  return static_cast<uint32_t>(raw);
}

/// Optional idempotency sequence number (absent / 0 = legacy path).
StatusOr<uint64_t> SeqField(const JsonValue& request) {
  const JsonValue* v = request.Find("seq");
  if (v == nullptr) return static_cast<uint64_t>(0);
  if (!v->is_number() || v->AsInt() < 0) {
    return Status::InvalidArgument("seq must be a non-negative integer");
  }
  return static_cast<uint64_t>(v->AsInt());
}

JsonValue StatusResponse(const SessionStatus& st) {
  JsonValue r = OkResponse();
  const JsonValue body = StatusBody(st);
  for (const auto& [k, v] : body.members()) r.Set(k, v);
  return r;
}

JsonValue HandleOpen(SessionManager& manager, const JsonValue& request) {
  const std::string resume = request.GetString("resume");
  if (!resume.empty()) {
    auto id = manager.Resume(resume);
    if (!id.ok()) return ErrorResponse(id.status());
    auto st = manager.Info(*id);
    if (!st.ok()) return ErrorResponse(st.status());
    JsonValue r = StatusResponse(*st);
    r.Set("resumed", true);
    return r;
  }

  SessionManager::OpenParams params;
  params.dataset = request.GetString("dataset", params.dataset);
  params.scale = request.GetDouble("scale", params.scale);
  params.seed = static_cast<uint64_t>(
      request.GetInt("seed", static_cast<int64_t>(params.seed)));
  params.budget = static_cast<size_t>(
      request.GetInt("budget", static_cast<int64_t>(params.budget)));
  params.question_mistake_prob =
      request.GetDouble("question_mistake_prob", 0.0);
  params.update_mistake_prob = request.GetDouble("update_mistake_prob", 0.0);
  params.algorithm = request.GetString("algorithm", params.algorithm);
  params.posting_delta = request.GetBool("posting_delta", params.posting_delta);
  params.compressed_rowsets =
      request.GetBool("compressed_rowsets", params.compressed_rowsets);

  auto id = manager.Open(params);
  if (!id.ok()) return ErrorResponse(id.status());
  JsonValue r = OkResponse();
  r.Set("session", *id);
  return r;
}

JsonValue HandleStep(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  int64_t episodes = request.GetInt("episodes", 1);
  if (episodes < 0) {
    return ErrorResponse(Status::InvalidArgument("episodes must be >= 0"));
  }
  auto seq = SeqField(request);
  if (!seq.ok()) return ErrorResponse(seq.status());
  auto st = manager.Step(*id, static_cast<size_t>(episodes), *seq);
  if (!st.ok()) return ErrorResponse(st.status());
  return StatusResponse(*st);
}

JsonValue HandleUpdateCell(SessionManager& manager,
                           const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  auto row = Uint32Field(request, "row");
  if (!row.ok()) return ErrorResponse(row.status());
  auto col = Uint32Field(request, "col");
  if (!col.ok()) return ErrorResponse(col.status());
  const JsonValue* value = request.Find("value");
  if (value == nullptr || !value->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("missing string field: value"));
  }
  auto seq = SeqField(request);
  if (!seq.ok()) return ErrorResponse(seq.status());
  auto st = manager.UpdateCell(*id, *row, *col, value->AsString(), *seq);
  if (!st.ok()) return ErrorResponse(st.status());
  JsonValue r = OkResponse();
  r.Set("last_seq", static_cast<int64_t>(st->last_seq));
  return r;
}

JsonValue HandleAnswer(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  const JsonValue* valid = request.Find("valid");
  if (valid == nullptr || !valid->is_bool()) {
    return ErrorResponse(
        Status::InvalidArgument("missing boolean field: valid"));
  }
  auto seq = SeqField(request);
  if (!seq.ok()) return ErrorResponse(seq.status());
  auto st = manager.Answer(*id, valid->AsBool(), *seq);
  if (!st.ok()) return ErrorResponse(st.status());
  JsonValue r = OkResponse();
  r.Set("last_seq", static_cast<int64_t>(st->last_seq));
  return r;
}

JsonValue HandleStatus(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  auto st = manager.Info(*id);
  if (!st.ok()) return ErrorResponse(st.status());
  return StatusResponse(*st);
}

JsonValue HandleRetract(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  const JsonValue* repair = request.Find("repair");
  if (repair == nullptr || !repair->is_number() || repair->AsInt() < 0) {
    return ErrorResponse(
        Status::InvalidArgument("missing non-negative field: repair"));
  }
  auto seq = SeqField(request);
  if (!seq.ok()) return ErrorResponse(seq.status());
  auto st =
      manager.Retract(*id, static_cast<size_t>(repair->AsInt()), *seq);
  if (!st.ok()) return ErrorResponse(st.status());
  JsonValue r = OkResponse();
  r.Set("last_seq", static_cast<int64_t>(st->last_seq));
  return r;
}

JsonValue HandlePing(SessionManager& manager) {
  const ServiceHealth h = manager.Health();
  JsonValue r = OkResponse();
  r.Set("uptime_s", h.uptime_s);
  r.Set("live_sessions", h.live_sessions);
  r.Set("max_sessions", h.max_sessions);
  r.Set("recovered_sessions", h.recovered_sessions);
  // Private-tier bytes summed across sessions; shared-tier bytes counted
  // once per base cache — the two never overlap, so their sum is true
  // process residency (no N-session double-count of shared bitmaps).
  r.Set("posting_resident_bytes", h.posting_resident_bytes);
  r.Set("shared_bases", h.shared_bases);
  r.Set("shared_resident_bytes", h.shared_resident_bytes);
  r.Set("shared_entries", h.shared_entries);
  r.Set("shared_hits", h.shared_hits);
  r.Set("shared_misses", h.shared_misses);
  r.Set("shared_hit_rate", h.shared_hit_rate());
  r.Set("rows_appended", h.rows_appended);
  r.Set("append_batches", h.append_batches);
  return r;
}

JsonValue HandleClose(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  Status st = manager.Close(*id);
  if (!st.ok()) return ErrorResponse(st);
  return OkResponse();
}

}  // namespace

JsonValue ErrorResponse(const Status& status, int64_t retry_after_ms) {
  JsonValue r = JsonValue::Object();
  r.Set("ok", false);
  r.Set("code", StatusCodeToString(status.code()));
  r.Set("error", status.message());
  if (retry_after_ms > 0) r.Set("retry_after_ms", retry_after_ms);
  return r;
}

JsonValue StatusBody(const SessionStatus& st) {
  JsonValue metrics = JsonValue::Object();
  metrics.Set("user_updates", st.metrics.user_updates);
  metrics.Set("user_answers", st.metrics.user_answers);
  metrics.Set("master_answers", st.metrics.master_answers);
  metrics.Set("initial_errors", st.metrics.initial_errors);
  metrics.Set("cells_repaired", st.metrics.cells_repaired);
  metrics.Set("queries_applied", st.metrics.queries_applied);
  metrics.Set("converged", st.metrics.converged);
  metrics.Set("benefit", st.metrics.Benefit());
  metrics.Set("posting_entries", st.metrics.posting_entries);
  // Private-tier residency; the shared tier is resident once process-wide
  // and reported both per session (pinned bytes) and once in `ping`.
  metrics.Set("posting_resident_bytes", st.metrics.posting_resident_bytes);
  metrics.Set("posting_compression", st.metrics.posting_compression);
  metrics.Set("posting_hits", st.metrics.posting_hits);
  metrics.Set("posting_misses", st.metrics.posting_misses);
  metrics.Set("posting_shared_hits", st.metrics.posting_shared_hits);
  metrics.Set("posting_shared_misses", st.metrics.posting_shared_misses);
  metrics.Set("posting_shared_bytes", st.metrics.posting_shared_bytes);
  metrics.Set("memo_hits", st.metrics.lattice_memo_hits);
  metrics.Set("memo_misses", st.metrics.lattice_memo_misses);
  metrics.Set("memo_shared_hits", st.metrics.lattice_memo_shared_hits);
  metrics.Set("memo_shared_misses", st.metrics.lattice_memo_shared_misses);
  // Streaming-append counters (AppendBatch-fed sessions; zero otherwise).
  metrics.Set("rows_appended", st.metrics.rows_appended);
  metrics.Set("append_batches", st.metrics.append_batches);
  metrics.Set("append_maintain_ms", st.metrics.append_maintain_ms);
  metrics.Set("ingest_rows_per_s", st.metrics.ingest_rows_per_s);
  // Derived rates so nobody recomputes them from counter pairs by hand.
  metrics.Set("posting_hit_rate", st.metrics.PostingHitRate());
  metrics.Set("posting_shared_hit_rate", st.metrics.PostingSharedHitRate());
  metrics.Set("memo_hit_rate", st.metrics.MemoHitRate());
  metrics.Set("memo_shared_hit_rate", st.metrics.MemoSharedHitRate());

  JsonValue body = JsonValue::Object();
  body.Set("session", st.id);
  body.Set("dataset", st.dataset);
  body.Set("finished", st.finished);
  body.Set("pending_cells", st.pending_cells);
  body.Set("queued_verdicts", st.queued_verdicts);
  body.Set("repairs", st.repairs);
  body.Set("table_crc", static_cast<int64_t>(st.table_crc));
  body.Set("last_seq", static_cast<int64_t>(st.last_seq));
  body.Set("metrics", std::move(metrics));
  return body;
}

JsonValue HandleRequest(SessionManager& manager, const JsonValue& request) {
  if (!request.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
  }
  const std::string verb = request.GetString("verb");
  if (verb == "open_session") return HandleOpen(manager, request);
  if (verb == "step") return HandleStep(manager, request);
  if (verb == "update_cell") return HandleUpdateCell(manager, request);
  if (verb == "answer") return HandleAnswer(manager, request);
  if (verb == "status") return HandleStatus(manager, request);
  if (verb == "retract") return HandleRetract(manager, request);
  if (verb == "close") return HandleClose(manager, request);
  if (verb == "ping") return HandlePing(manager);
  if (verb == "shutdown") {
    return ErrorResponse(Status::Unimplemented(
        "shutdown requires a server started with --allow-remote-shutdown"));
  }
  return ErrorResponse(
      Status::InvalidArgument("unknown verb: \"" + verb + "\""));
}

}  // namespace falcon
