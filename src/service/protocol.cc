#include "service/protocol.h"

#include <cstdint>
#include <limits>

namespace falcon {
namespace {

JsonValue OkResponse() {
  JsonValue r = JsonValue::Object();
  r.Set("ok", true);
  return r;
}

StatusOr<std::string> RequiredSession(const JsonValue& request) {
  std::string id = request.GetString("session");
  if (id.empty()) {
    return Status::InvalidArgument("missing required field: session");
  }
  return id;
}

StatusOr<uint32_t> Uint32Field(const JsonValue& request, const char* key) {
  const JsonValue* v = request.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument(std::string("missing numeric field: ") +
                                   key);
  }
  int64_t raw = v->AsInt();
  if (raw < 0 || raw > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(std::string("field out of range: ") + key);
  }
  return static_cast<uint32_t>(raw);
}

JsonValue HandleOpen(SessionManager& manager, const JsonValue& request) {
  SessionManager::OpenParams params;
  params.dataset = request.GetString("dataset", params.dataset);
  params.scale = request.GetDouble("scale", params.scale);
  params.seed = static_cast<uint64_t>(
      request.GetInt("seed", static_cast<int64_t>(params.seed)));
  params.budget = static_cast<size_t>(
      request.GetInt("budget", static_cast<int64_t>(params.budget)));
  params.question_mistake_prob =
      request.GetDouble("question_mistake_prob", 0.0);
  params.update_mistake_prob = request.GetDouble("update_mistake_prob", 0.0);
  params.algorithm = request.GetString("algorithm", params.algorithm);

  auto id = manager.Open(params);
  if (!id.ok()) return ErrorResponse(id.status());
  JsonValue r = OkResponse();
  r.Set("session", *id);
  return r;
}

JsonValue HandleStep(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  int64_t episodes = request.GetInt("episodes", 1);
  if (episodes < 0) {
    return ErrorResponse(Status::InvalidArgument("episodes must be >= 0"));
  }
  auto st = manager.Step(*id, static_cast<size_t>(episodes));
  if (!st.ok()) return ErrorResponse(st.status());
  JsonValue r = OkResponse();
  const JsonValue body = StatusBody(*st);
  for (const auto& [k, v] : body.members()) r.Set(k, v);
  return r;
}

JsonValue HandleUpdateCell(SessionManager& manager,
                           const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  auto row = Uint32Field(request, "row");
  if (!row.ok()) return ErrorResponse(row.status());
  auto col = Uint32Field(request, "col");
  if (!col.ok()) return ErrorResponse(col.status());
  const JsonValue* value = request.Find("value");
  if (value == nullptr || !value->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("missing string field: value"));
  }
  Status st = manager.UpdateCell(*id, *row, *col, value->AsString());
  if (!st.ok()) return ErrorResponse(st);
  return OkResponse();
}

JsonValue HandleAnswer(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  const JsonValue* valid = request.Find("valid");
  if (valid == nullptr || !valid->is_bool()) {
    return ErrorResponse(
        Status::InvalidArgument("missing boolean field: valid"));
  }
  Status st = manager.Answer(*id, valid->AsBool());
  if (!st.ok()) return ErrorResponse(st);
  return OkResponse();
}

JsonValue HandleStatus(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  auto st = manager.Info(*id);
  if (!st.ok()) return ErrorResponse(st.status());
  JsonValue r = OkResponse();
  const JsonValue body = StatusBody(*st);
  for (const auto& [k, v] : body.members()) r.Set(k, v);
  return r;
}

JsonValue HandleRetract(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  const JsonValue* repair = request.Find("repair");
  if (repair == nullptr || !repair->is_number() || repair->AsInt() < 0) {
    return ErrorResponse(
        Status::InvalidArgument("missing non-negative field: repair"));
  }
  Status st = manager.Retract(*id, static_cast<size_t>(repair->AsInt()));
  if (!st.ok()) return ErrorResponse(st);
  return OkResponse();
}

JsonValue HandleClose(SessionManager& manager, const JsonValue& request) {
  auto id = RequiredSession(request);
  if (!id.ok()) return ErrorResponse(id.status());
  Status st = manager.Close(*id);
  if (!st.ok()) return ErrorResponse(st);
  return OkResponse();
}

}  // namespace

JsonValue ErrorResponse(const Status& status, int64_t retry_after_ms) {
  JsonValue r = JsonValue::Object();
  r.Set("ok", false);
  r.Set("code", StatusCodeToString(status.code()));
  r.Set("error", status.message());
  if (retry_after_ms > 0) r.Set("retry_after_ms", retry_after_ms);
  return r;
}

JsonValue StatusBody(const SessionStatus& st) {
  JsonValue metrics = JsonValue::Object();
  metrics.Set("user_updates", st.metrics.user_updates);
  metrics.Set("user_answers", st.metrics.user_answers);
  metrics.Set("master_answers", st.metrics.master_answers);
  metrics.Set("initial_errors", st.metrics.initial_errors);
  metrics.Set("cells_repaired", st.metrics.cells_repaired);
  metrics.Set("queries_applied", st.metrics.queries_applied);
  metrics.Set("converged", st.metrics.converged);
  metrics.Set("benefit", st.metrics.Benefit());
  metrics.Set("posting_entries", st.metrics.posting_entries);
  metrics.Set("posting_resident_bytes", st.metrics.posting_resident_bytes);
  metrics.Set("posting_compression", st.metrics.posting_compression);

  JsonValue body = JsonValue::Object();
  body.Set("session", st.id);
  body.Set("dataset", st.dataset);
  body.Set("finished", st.finished);
  body.Set("pending_cells", st.pending_cells);
  body.Set("queued_verdicts", st.queued_verdicts);
  body.Set("repairs", st.repairs);
  body.Set("table_crc", static_cast<int64_t>(st.table_crc));
  body.Set("metrics", std::move(metrics));
  return body;
}

JsonValue HandleRequest(SessionManager& manager, const JsonValue& request) {
  if (!request.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
  }
  const std::string verb = request.GetString("verb");
  if (verb == "open_session") return HandleOpen(manager, request);
  if (verb == "step") return HandleStep(manager, request);
  if (verb == "update_cell") return HandleUpdateCell(manager, request);
  if (verb == "answer") return HandleAnswer(manager, request);
  if (verb == "status") return HandleStatus(manager, request);
  if (verb == "retract") return HandleRetract(manager, request);
  if (verb == "close") return HandleClose(manager, request);
  if (verb == "shutdown") {
    return ErrorResponse(Status::Unimplemented(
        "shutdown requires a server started with --allow-remote-shutdown"));
  }
  return ErrorResponse(
      Status::InvalidArgument("unknown verb: \"" + verb + "\""));
}

}  // namespace falcon
