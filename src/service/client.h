// Blocking client for the cleaning service's line-delimited JSON protocol.
// One connection, strict request/response alternation — exactly what one
// simulated analyst needs. Not thread-safe; give each analyst thread its
// own client.
#ifndef FALCON_SERVICE_CLIENT_H_
#define FALCON_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/socket.h"
#include "common/status.h"

namespace falcon {

class ServiceClient {
 public:
  static StatusOr<ServiceClient> ConnectToUnix(const std::string& path);
  static StatusOr<ServiceClient> ConnectToTcp(uint16_t port);

  /// Per-request deadline: Call() fails with kDeadlineExceeded when the
  /// response line takes longer than `ms` (0 = wait forever). Measured
  /// from read entry — after a request is sent, a response is due.
  void set_deadline(int64_t ms) {
    channel_->set_read_deadline(ms, /*from_first_byte=*/false);
  }

  /// Sends one request and blocks for its response line. Transport errors
  /// (peer gone, malformed response) surface as a Status; protocol-level
  /// failures come back as `{"ok":false,...}` objects.
  StatusOr<JsonValue> Call(const JsonValue& request);

  /// Convenience: Call() plus `ok` enforcement — a protocol-level failure
  /// becomes an error Status carrying the response's code and message.
  StatusOr<JsonValue> CallChecked(const JsonValue& request);

 private:
  explicit ServiceClient(FdHolder fd)
      : channel_(std::make_unique<LineChannel>(std::move(fd))) {}

  std::unique_ptr<LineChannel> channel_;
};

}  // namespace falcon

#endif  // FALCON_SERVICE_CLIENT_H_
