// Oracle for service-driven sessions: validity verdicts supplied by the
// connected client (the `answer` verb) take precedence; with no verdict
// queued it falls back to the simulated user. Constructed with the same
// (clean, mistake_prob, seed + 1) arguments the session would use
// internally, the fallback path reproduces an oracle-driven run
// bit-for-bit — which is how the load bench verifies service runs against
// serial ones.
#ifndef FALCON_SERVICE_SCRIPTED_ORACLE_H_
#define FALCON_SERVICE_SCRIPTED_ORACLE_H_

#include <deque>

#include "core/oracle.h"

namespace falcon {

class ScriptedOracle : public UserOracle {
 public:
  using UserOracle::UserOracle;

  /// Queues one client-supplied verdict; consumed FIFO by the next
  /// validity question the lattice search asks.
  void QueueVerdict(bool valid) { queued_.push_back(valid); }

  size_t queued() const { return queued_.size(); }

  Answered AnswerEx(const Lattice& lattice, NodeId n) override {
    if (!queued_.empty()) {
      bool valid = queued_.front();
      queued_.pop_front();
      // Keep the mistake RNG aligned with the fallback path so a crashed
      // session's replay (which re-answers this question via the fallback
      // and adopts the journaled verdict) sees the same stream.
      AlignMistakeDraw();
      return {valid, true};
    }
    return UserOracle::AnswerEx(lattice, n);
  }

 private:
  std::deque<bool> queued_;
};

}  // namespace falcon

#endif  // FALCON_SERVICE_SCRIPTED_ORACLE_H_
