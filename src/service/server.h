// CleaningServer: serves the line-delimited JSON protocol over a Unix or
// TCP socket.
//
// Thread structure (event-driven; see DESIGN.md "Event-driven service
// layer")
//   - one I/O thread running an epoll loop: it accepts connections
//     (level-triggered listener so EMFILE backoff stays simple), performs
//     all reads and writes on non-blocking connection fds registered
//     edge-triggered, frames lines incrementally out of per-connection
//     input buffers, and flushes per-connection output buffers as the
//     peer drains them. Read-deadline (slowloris) and write-stall
//     deadlines are kept on a hashed timer wheel (common/timer_wheel.h)
//     advanced by the same loop — the old per-connection
//     poll()/SO_SNDTIMEO semantics, without a thread per connection;
//   - a fixed pool of `workers` threads executing HandleRequest against
//     per-session FIFO queues: one session's requests run strictly in
//     order, K distinct sessions proceed in parallel. Session-less verbs
//     (open_session, ping, malformed input) drain from a separate global
//     FIFO. Workers hand finished responses back to the I/O thread
//     through a completion queue + eventfd wakeup;
//   - one sweeper thread running idle-session eviction.
//
// Ordering: responses on one connection are written in request order even
// though requests for different sessions complete out of order — each
// connection holds a FIFO of response slots and only the contiguous
// completed prefix is flushed.
//
// Overload policy: admission is bounded globally (`queue_limit` queued
// requests across all sessions) and per session (`session_queue_limit`).
// A request over either bound is rejected immediately on the I/O thread
// with kUnavailable and a retry_after_ms hint computed adaptively from
// queue depth (base at an empty queue, up to 4x base as the global queue
// fills) — traffic floods degrade into fast rejections instead of
// unbounded memory growth or rising latency for admitted work. Session
// admission (max_sessions) is enforced separately by the SessionManager.
//
// Shutdown: Stop() (signal handler, remote `shutdown` verb, or test
// teardown) stops admission, resolves every queued-but-unstarted request
// with a typed kUnavailable response, lets workers finish requests
// already started, flushes what can be flushed, then Wait() joins every
// thread and closes all sessions.
#ifndef FALCON_SERVICE_SERVER_H_
#define FALCON_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/timer_wheel.h"
#include "service/session_manager.h"

namespace falcon {

struct ServerOptions {
  /// Unix socket path; takes precedence over tcp_port when non-empty.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (0 = ephemeral; read back via bound_port()).
  uint16_t tcp_port = 0;
  /// Worker threads executing requests.
  size_t workers = 4;
  /// Global bound on queued-not-yet-started requests; arrivals beyond it
  /// are rejected (overload).
  size_t queue_limit = 64;
  /// Per-session bound on queued requests; a client hammering one session
  /// is rejected before it can exhaust the global budget.
  size_t session_queue_limit = 16;
  /// Base backoff hint attached to overload rejections; scaled up to 4x
  /// by the adaptive policy as the global queue fills.
  int64_t retry_after_ms = 50;
  /// Honour the remote `shutdown` verb (CI teardown); off by default.
  bool allow_remote_shutdown = false;
  /// Per-line read deadline, measured from the first byte of a partial
  /// line (slowloris defense: an idle connection waits forever, a
  /// half-sent line does not). Expiry evicts the connection with a typed
  /// DEADLINE_EXCEEDED error. The same budget bounds how long a response
  /// may sit unflushed against a stalled peer (the old SO_SNDTIMEO role).
  /// 0 disables both.
  int64_t read_deadline_ms = 60000;
  /// Bound on one request line so a hostile or broken peer can't balloon
  /// the connection's input buffer; an oversized line drops the peer.
  size_t max_line_bytes = size_t{1} << 20;
  /// Seconds between idle-eviction sweeps (0 disables the sweeper).
  double sweep_interval_s = 0.0;
  /// Session-level limits (max sessions, shards, posting budget, journals,
  /// idle timeout).
  ServiceLimits limits;
};

class CleaningServer {
 public:
  explicit CleaningServer(ServerOptions options);
  ~CleaningServer();

  /// Binds the socket and starts all threads. Call once.
  Status Start();

  /// Initiates shutdown (idempotent, callable from any thread including a
  /// signal-driven one via WaitUntilStopped's self-pipe in falcon_serverd).
  void Stop();

  /// Blocks until Stop() was called and all threads are joined.
  void Wait();

  uint16_t bound_port() const;
  SessionManager& manager() { return manager_; }

  /// Sessions replayed from journals by Start()'s recovery scan.
  size_t recovered_sessions() const { return recovered_sessions_; }

  /// Requests admitted but not yet started by a worker (global + all
  /// session queues). Exposed for tests that need a deterministic view of
  /// queue occupancy.
  size_t queued_requests() const;

  /// Requests currently executing on a worker. Together with
  /// queued_requests() this lets a test pin the pool in a known state
  /// (e.g. wait until a long step is provably in flight) without sleeps.
  size_t inflight_requests() const;

 private:
  /// One admitted request and the continuation that must be called with
  /// its response exactly once (normal completion or shutdown drain).
  struct Pending {
    JsonValue request;
    std::function<void(JsonValue)> done;
  };

  /// FIFO of requests for one session id. `running` marks that a worker
  /// is executing this session's head request, so the queue is not in
  /// ready_ and a second worker can never reorder the session.
  struct SessionQueue {
    std::deque<Pending> items;
    bool running = false;
  };

  /// A finished response travelling worker → I/O thread.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t slot = 0;
    std::string line;  ///< Serialized response.
  };

  /// Per-connection state owned by the I/O thread.
  struct Conn {
    uint64_t id = 0;
    FdHolder fd;
    std::string in;       ///< Partial line carried across reads.
    std::string out;      ///< Bytes not yet accepted by the kernel.
    size_t out_off = 0;   ///< Flushed prefix of `out`.
    /// Response slots in request order; a slot's string is set when its
    /// request completes, and only the contiguous completed prefix is
    /// serialized into `out`.
    std::deque<std::pair<uint64_t, std::optional<std::string>>> slots;
    uint64_t next_slot = 0;
    int64_t read_deadline_at = 0;   ///< 0 = no partial line pending.
    int64_t write_deadline_at = 0;  ///< 0 = no unflushed output pending.
    bool eof = false;               ///< Peer half-closed; drain then close.
    bool evict_after_flush = false; ///< Fatal error already queued.
    bool shutdown_after_flush = false;  ///< Remote shutdown verb accepted.
    /// Evicted but possibly still referenced on the I/O thread's stack;
    /// the owning unique_ptr sits in dead_conns_ until the next loop turn.
    bool dead = false;
  };

  void IoLoop();
  void WorkerLoop();
  void SweeperLoop();

  // -- I/O-thread helpers (single-threaded; no locks except the explicit
  //    completion/scheduler handoffs) --
  void AcceptReady(int64_t now_ms);
  void ReadConn(Conn* conn, int64_t now_ms);
  bool ProcessLine(Conn* conn, std::string line);
  void FlushSlots(Conn* conn, int64_t now_ms);
  void TryWrite(Conn* conn, int64_t now_ms);
  void DrainCompletions(int64_t now_ms);
  void FireTimers(int64_t now_ms);
  void EvictConn(Conn* conn);
  void CompleteSlot(Conn* conn, uint64_t slot, std::string line,
                    int64_t now_ms);

  /// Queue-or-reject under the overload policy. `done` is invoked exactly
  /// once — inline (rejections) or from a worker/shutdown drain.
  void SubmitAsync(JsonValue request, std::function<void(JsonValue)> done);

  /// Blocking submit used by in-process callers; wraps SubmitAsync.
  JsonValue Submit(JsonValue request);

  /// Backoff hint scaled by global queue depth. Call with sched_mu_ held.
  int64_t AdaptiveRetryMsLocked() const;

  /// Posts a completion and wakes the I/O thread.
  void PostCompletion(Completion c);

  ServerOptions options_;
  SessionManager manager_;
  Listener listener_;
  size_t recovered_sessions_ = 0;

  // -- Scheduler state (per-session queues + global queue) --
  mutable std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::unordered_map<std::string, SessionQueue> session_queues_;
  std::deque<std::string> ready_;   ///< Session ids with a runnable head.
  std::deque<Pending> global_;      ///< Session-less verbs; any worker.
  size_t queued_ = 0;               ///< Items admitted, not yet started.
  size_t inflight_ = 0;             ///< Items a worker is executing.
  bool stopping_ = false;

  // -- Worker → I/O completion handoff --
  std::mutex completion_mu_;
  std::deque<Completion> completions_;
  FdHolder wake_fd_;  ///< eventfd; written on completion and on Stop().

  // -- I/O thread state (touched only by IoLoop after Start) --
  FdHolder epoll_fd_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<std::unique_ptr<Conn>> dead_conns_;  ///< Freed next loop turn.
  std::unique_ptr<TimerWheel> wheel_;
  uint64_t next_conn_id_ = 1;
  std::atomic<bool> stop_flag_{false};  ///< Cheap stop check for the loop.

  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::thread sweeper_;

  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stop_requested_ = false;  ///< Stop() ran.
  bool joining_ = false;         ///< One Wait() caller owns the joins.
  bool stopped_ = false;         ///< All threads joined.
};

}  // namespace falcon

#endif  // FALCON_SERVICE_SERVER_H_
