// CleaningServer: serves the line-delimited JSON protocol over a Unix or
// TCP socket.
//
// Thread structure
//   - one acceptor thread blocking in accept();
//   - one reader thread per connection: reads a line, parses it, submits
//     it to the worker queue, waits for the response, writes it back —
//     strict request/response order per connection;
//   - a fixed pool of `workers` threads executing HandleRequest;
//   - one sweeper thread running idle-session eviction.
//
// Overload policy: the worker queue is bounded at `queue_limit`. A request
// arriving while the queue is full is rejected immediately on the reader
// thread with kUnavailable and a retry_after_ms hint — readers never
// block, so a flood of traffic degrades into fast rejections instead of
// unbounded memory growth or rising latency for admitted work. Session
// admission (max_sessions) is enforced separately by the SessionManager.
//
// Shutdown: Stop() (signal handler, remote `shutdown` verb, or test
// teardown) shuts the listener down, unblocks connection readers, lets
// workers drain requests already admitted to the queue, joins every
// thread, then closes all sessions.
#ifndef FALCON_SERVICE_SERVER_H_
#define FALCON_SERVICE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/socket.h"
#include "common/status.h"
#include "service/session_manager.h"

namespace falcon {

struct ServerOptions {
  /// Unix socket path; takes precedence over tcp_port when non-empty.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (0 = ephemeral; read back via bound_port()).
  uint16_t tcp_port = 0;
  /// Worker threads executing requests.
  size_t workers = 4;
  /// Bounded request queue; arrivals beyond it are rejected (overload).
  size_t queue_limit = 64;
  /// Backoff hint attached to overload rejections.
  int64_t retry_after_ms = 50;
  /// Honour the remote `shutdown` verb (CI teardown); off by default.
  bool allow_remote_shutdown = false;
  /// Per-line read deadline on connection readers, measured from the first
  /// byte of a partial line (slowloris defense: an idle connection waits
  /// forever, a half-sent line does not). Expiry evicts the connection
  /// with a typed DEADLINE_EXCEEDED error. Also bounds response writes to
  /// stalled clients (SO_SNDTIMEO). 0 disables.
  int64_t read_deadline_ms = 60000;
  /// Seconds between idle-eviction sweeps (0 disables the sweeper).
  double sweep_interval_s = 0.0;
  /// Session-level limits (max sessions, posting budget, journals, idle
  /// timeout).
  ServiceLimits limits;
};

class CleaningServer {
 public:
  explicit CleaningServer(ServerOptions options);
  ~CleaningServer();

  /// Binds the socket and starts all threads. Call once.
  Status Start();

  /// Initiates shutdown (idempotent, callable from any thread including a
  /// signal-driven one via WaitUntilStopped's self-pipe in falcon_serverd).
  void Stop();

  /// Blocks until Stop() was called and all threads are joined.
  void Wait();

  uint16_t bound_port() const;
  SessionManager& manager() { return manager_; }

  /// Sessions replayed from journals by Start()'s recovery scan.
  size_t recovered_sessions() const { return recovered_sessions_; }

 private:
  struct WorkItem {
    JsonValue request;
    std::promise<JsonValue> response;
  };

  void AcceptLoop();
  void ConnectionLoop(FdHolder fd);
  void WorkerLoop();
  void SweeperLoop();

  /// Queue-or-reject under the overload policy; returns the response.
  JsonValue Submit(JsonValue request);

  ServerOptions options_;
  SessionManager manager_;
  Listener listener_;
  size_t recovered_sessions_ = 0;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<WorkItem>> queue_;
  bool stopping_ = false;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;  ///< Live connection fds, shut down on Stop.
  std::vector<std::thread> conn_threads_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread sweeper_;

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stop_requested_ = false;  ///< Stop() ran.
  bool joining_ = false;         ///< One Wait() caller owns the joins.
  bool stopped_ = false;         ///< All threads joined.
};

}  // namespace falcon

#endif  // FALCON_SERVICE_SERVER_H_
