// Wire protocol of the cleaning service: line-delimited JSON.
//
// Grammar (one request line → one response line, in order):
//   request  := { "verb": <verb>, ...verb arguments }
//   response := { "ok": true, ...verb results }
//             | { "ok": false, "code": <STATUS_CODE>, "error": <message>
//                 [, "retry_after_ms": <int>] }
//
// Verbs:
//   open_session  {dataset, scale, seed, budget, question_mistake_prob,
//                  update_mistake_prob, algorithm, posting_delta}
//                                                  → {session}
//   open_session  {resume: "s-<n>"}                → status body (resumes a
//                  live, evicted, or journal-recovered session; the body's
//                  last_seq re-syncs the client's idempotency counter)
//   step          {session, episodes [, seq]}      → status body (below)
//   update_cell   {session, row, col, value [, seq]} → {last_seq}
//   answer        {session, valid [, seq]}         → {last_seq}
//   status        {session}                        → status body
//   retract       {session, repair [, seq]}        → {last_seq}
//   close         {session}                        → {}
//   ping          {}                               → {uptime_s,
//                  live_sessions, max_sessions, recovered_sessions,
//                  posting_resident_bytes}
//   shutdown      {}                               → {} (only when the
//                  server was started with --allow-remote-shutdown)
//
// Status body: {session, dataset, finished, pending_cells,
//   queued_verdicts, table_crc, last_seq, metrics:{user_updates,
//   user_answers, master_answers, initial_errors, cells_repaired,
//   queries_applied, converged, benefit}}.
//
// Idempotent retries: a mutating verb may carry a per-session `seq`
// (monotonically increasing from 1). The server executes seq ==
// last_seq + 1 exactly once and caches the response; a retried seq
// returns the cached response without re-applying. Stale or gapped seqs
// fail with FAILED_PRECONDITION. seq == 0 / absent is the legacy
// non-idempotent path.
//
// "retry_after_ms" appears only on kUnavailable rejections (admission
// control: full request queue or full session table) and tells the client
// when to retry.
//
// HandleRequest is the single dispatcher shared by the socket server and
// in-process tests, so protocol behaviour is testable without sockets.
#ifndef FALCON_SERVICE_PROTOCOL_H_
#define FALCON_SERVICE_PROTOCOL_H_

#include <string>

#include "common/json.h"
#include "service/session_manager.h"

namespace falcon {

/// Dispatches one parsed request against `manager`; never throws and
/// always returns a well-formed response object (errors become
/// `{"ok":false,...}`). The `shutdown` verb is answered with
/// kUnimplemented here — the server intercepts it before dispatch.
JsonValue HandleRequest(SessionManager& manager, const JsonValue& request);

/// Builds an error response from a status. `retry_after_ms` > 0 adds the
/// backoff hint (used for kUnavailable).
JsonValue ErrorResponse(const Status& status, int64_t retry_after_ms = 0);

/// Serializes a session snapshot into the response's status body.
JsonValue StatusBody(const SessionStatus& st);

}  // namespace falcon

#endif  // FALCON_SERVICE_PROTOCOL_H_
