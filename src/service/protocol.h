// Wire protocol of the cleaning service: line-delimited JSON.
//
// Grammar (one request line → one response line, in order):
//   request  := { "verb": <verb>, ...verb arguments }
//   response := { "ok": true, ...verb results }
//             | { "ok": false, "code": <STATUS_CODE>, "error": <message>
//                 [, "retry_after_ms": <int>] }
//
// Verbs:
//   open_session  {dataset, scale, seed, budget, question_mistake_prob,
//                  update_mistake_prob, algorithm} → {session}
//   step          {session, episodes}              → status body (below)
//   update_cell   {session, row, col, value}       → {}
//   answer        {session, valid}                 → {}
//   status        {session}                        → status body
//   retract       {session, repair}                → {}
//   close         {session}                        → {}
//   shutdown      {}                               → {} (only when the
//                  server was started with --allow-remote-shutdown)
//
// Status body: {session, dataset, finished, pending_cells,
//   queued_verdicts, table_crc, metrics:{user_updates, user_answers,
//   master_answers, initial_errors, cells_repaired, queries_applied,
//   converged, benefit}}.
//
// "retry_after_ms" appears only on kUnavailable rejections (admission
// control: full request queue or full session table) and tells the client
// when to retry.
//
// HandleRequest is the single dispatcher shared by the socket server and
// in-process tests, so protocol behaviour is testable without sockets.
#ifndef FALCON_SERVICE_PROTOCOL_H_
#define FALCON_SERVICE_PROTOCOL_H_

#include <string>

#include "common/json.h"
#include "service/session_manager.h"

namespace falcon {

/// Dispatches one parsed request against `manager`; never throws and
/// always returns a well-formed response object (errors become
/// `{"ok":false,...}`). The `shutdown` verb is answered with
/// kUnimplemented here — the server intercepts it before dispatch.
JsonValue HandleRequest(SessionManager& manager, const JsonValue& request);

/// Builds an error response from a status. `retry_after_ms` > 0 adds the
/// backoff hint (used for kUnavailable).
JsonValue ErrorResponse(const Status& status, int64_t retry_after_ms = 0);

/// Serializes a session snapshot into the response's status body.
JsonValue StatusBody(const SessionStatus& st);

}  // namespace falcon

#endif  // FALCON_SERVICE_PROTOCOL_H_
