#include "service/client.h"

#include <utility>

namespace falcon {

StatusOr<ServiceClient> ServiceClient::ConnectToUnix(
    const std::string& path) {
  FALCON_ASSIGN_OR_RETURN(FdHolder fd, ConnectUnix(path));
  return ServiceClient(std::move(fd));
}

StatusOr<ServiceClient> ServiceClient::ConnectToTcp(uint16_t port) {
  FALCON_ASSIGN_OR_RETURN(FdHolder fd, ConnectTcp(port));
  return ServiceClient(std::move(fd));
}

StatusOr<JsonValue> ServiceClient::Call(const JsonValue& request) {
  FALCON_RETURN_IF_ERROR(channel_->WriteLine(request.Serialize()));
  std::string line;
  bool eof = false;
  FALCON_RETURN_IF_ERROR(channel_->ReadLine(&line, &eof));
  if (eof) return Status::Internal("server closed the connection");
  return JsonValue::Parse(line);
}

StatusOr<JsonValue> ServiceClient::CallChecked(const JsonValue& request) {
  FALCON_ASSIGN_OR_RETURN(JsonValue response, Call(request));
  if (!response.GetBool("ok")) {
    return Status::Internal("request failed: " +
                            response.GetString("code", "?") + ": " +
                            response.GetString("error"));
  }
  return response;
}

}  // namespace falcon
