// SessionManager: N concurrent cleaning sessions over shared immutable
// dataset snapshots.
//
// Threading model
//   - A manager-level mutex guards the session registry and the dataset
//     cache; it is held only for lookups/insertions, never across session
//     work.
//   - Each session has its own mutex serializing all operations on it
//     (step, update_cell, answer, retract, status, close). Two requests
//     for the same session queue up; requests for different sessions run
//     fully in parallel.
//
// Snapshot model (copy-on-write)
//   - The first open of a (dataset, scale) pair builds the workload once
//     and caches it as an immutable shared base (clean + dirty tables and
//     their common ValuePool, which is thread-safe).
//   - Each session's working table is a COW clone of the shared dirty
//     base: Clone() is O(arity) and shares column buffers; a session's
//     first write to a column detaches a private copy. The clean table is
//     read in place by every session concurrently — nothing writes it.
//
// Isolation: per-session journal file, RNG seed, oracle, search-algorithm
// instance, and a slice of the global posting-index byte budget
// (total / max_sessions), so one session's cache pressure cannot starve
// the others.
#ifndef FALCON_SERVICE_SESSION_MANAGER_H_
#define FALCON_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/search.h"
#include "core/session.h"
#include "datagen/workload.h"
#include "service/scripted_oracle.h"

namespace falcon {

/// Manager-wide limits, fixed at construction.
struct ServiceLimits {
  /// Open() fails with kUnavailable once this many sessions are live.
  size_t max_sessions = 8;
  /// Total posting-index byte budget, sliced evenly across max_sessions
  /// (0 = unbounded caches).
  size_t posting_budget_bytes = 0;
  /// Directory for per-session write-ahead journals ("" disables
  /// journaling).
  std::string journal_dir;
  /// Sessions idle longer than this are closed by EvictIdle() (0 = never).
  double idle_timeout_s = 0.0;
};

/// Per-session view returned by Step/Info.
struct SessionStatus {
  std::string id;
  std::string dataset;
  bool finished = false;
  size_t pending_cells = 0;    ///< Worklist + queued external updates.
  size_t queued_verdicts = 0;  ///< Client answers not yet consumed.
  size_t repairs = 0;          ///< Repair-log entries (retract indexes).
  uint32_t table_crc = 0;      ///< TableContentsCrc of the working table.
  SessionMetrics metrics;
};

class SessionManager {
 public:
  /// Parameters of one `open_session` request.
  struct OpenParams {
    std::string dataset = "Synth10k";
    double scale = 1.0;
    uint64_t seed = 1234;
    size_t budget = 3;
    double question_mistake_prob = 0.0;
    double update_mistake_prob = 0.0;
    std::string algorithm = "CoDive";
  };

  explicit SessionManager(ServiceLimits limits);
  ~SessionManager();

  /// Creates a session; returns its id ("s-<n>"). kUnavailable when the
  /// session table is full (admission control — the caller should retry
  /// after a close or eviction).
  StatusOr<std::string> Open(const OpenParams& params);

  /// Runs up to `max_episodes` cleaning episodes (0 = to convergence).
  StatusOr<SessionStatus> Step(const std::string& id, size_t max_episodes);

  /// Queues an analyst cell repair; the next episode executes it.
  Status UpdateCell(const std::string& id, uint32_t row, uint32_t col,
                    const std::string& value);

  /// Queues a validity verdict consumed by the next oracle question.
  Status Answer(const std::string& id, bool valid);

  /// Metrics + progress snapshot without running anything.
  StatusOr<SessionStatus> Info(const std::string& id);

  /// Retracts applied-repair log entry `repair_index` (newest-first rule
  /// applies; see CleaningSession::RetractRule).
  Status Retract(const std::string& id, size_t repair_index);

  /// Closes and destroys the session (waits for an in-flight operation).
  Status Close(const std::string& id);

  /// Closes sessions idle past the configured timeout; returns how many.
  size_t EvictIdle();

  /// Graceful drain: closes every session, waiting for in-flight work.
  void CloseAll();

  size_t active_sessions() const;
  const ServiceLimits& limits() const { return limits_; }

 private:
  struct ServiceSession {
    std::string id;
    std::string dataset;
    std::mutex mu;  ///< Serializes all operations on this session.
    std::shared_ptr<const CleaningWorkload> base;
    Table working;  ///< COW clone of base->dirty.
    std::unique_ptr<ScriptedOracle> oracle;
    std::unique_ptr<SearchAlgorithm> algorithm;
    std::unique_ptr<CleaningSession> session;
    /// steady_clock nanos of the last finished operation; atomic so the
    /// idle sweeper can read it without taking mu.
    std::atomic<int64_t> last_active_ns{0};
    /// Set (under mu) once Close ran; late arrivals holding the shared_ptr
    /// observe it and report NotFound.
    bool closed = false;

    ServiceSession(std::shared_ptr<const CleaningWorkload> b)
        : base(std::move(b)), working(base->dirty.Clone()) {}
    void Touch() {
      last_active_ns.store(std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count(),
                           std::memory_order_relaxed);
    }
  };

  /// Builds or fetches the shared immutable base for (dataset, scale).
  StatusOr<std::shared_ptr<const CleaningWorkload>> GetBase(
      const std::string& dataset, double scale);

  StatusOr<std::shared_ptr<ServiceSession>> Lookup(const std::string& id);
  static SessionStatus Snapshot(const ServiceSession& s);

  const ServiceLimits limits_;
  mutable std::mutex mu_;  ///< Guards sessions_, bases_, next_id_.
  std::map<std::string, std::shared_ptr<ServiceSession>> sessions_;
  std::map<std::string, std::shared_ptr<const CleaningWorkload>> bases_;
  uint64_t next_id_ = 1;
};

}  // namespace falcon

#endif  // FALCON_SERVICE_SESSION_MANAGER_H_
