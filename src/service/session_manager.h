// SessionManager: N concurrent cleaning sessions over shared immutable
// dataset snapshots.
//
// Threading model
//   - The session registry is lock-striped into `session_shards` shards
//     keyed by session-id hash: open/step/close on different sessions
//     contend only when their ids collide on a stripe, never on a global
//     lock. Shard mutexes are held only for lookups/insertions/erases,
//     never across session work and never while another lock is taken.
//   - Admission (max_sessions) uses an atomic reservation counter:
//     Open/RecoverOne reserve a slot up front and release it on every
//     failure path, so the live count is never transiently negative or
//     double-counted and needs no global lock.
//   - The dataset cache and shared base tiers (`bases_`) sit behind their
//     own mutex (`base_mu_`), acquired after a session's mutex when both
//     are needed (Mutate → TouchBase, CloseInternal) and never while a
//     shard mutex is held.
//   - Each session has its own mutex serializing all operations on it
//     (step, update_cell, answer, retract, status, close). Two requests
//     for the same session queue up; requests for different sessions run
//     fully in parallel.
//
// Snapshot model (copy-on-write)
//   - The first open of a (dataset, scale) pair builds the workload once
//     and caches it as an immutable shared base (clean + dirty tables and
//     their common ValuePool, which is thread-safe).
//   - Each session's working table is a COW clone of the shared dirty
//     base: Clone() is O(arity) and shares column buffers; a session's
//     first write to a column detaches a private copy. The clean table is
//     read in place by every session concurrently — nothing writes it.
//
// Isolation: per-session journal file, RNG seed, oracle, search-algorithm
// instance, and a slice of the global posting-index byte budget
// (total / max_sessions), so one session's cache pressure cannot starve
// the others.
//
// Shared base tier (DESIGN.md "Shared base cache & epoch invalidation")
//   - Each bases_ entry owns at most one SharedBaseCache keyed on the
//     workload's snapshot id. Sessions opened over that base attach to it:
//     postings and pairwise intersections over columns a session has not
//     mutated are computed once process-wide and served to every session.
//   - Lifecycle: the cache is created when the first session registers on
//     a base and dropped (whole-tier invalidation + release) when the
//     last session on that base closes; the workload itself stays cached.
//   - Budget: each cache is capped at shared_cache_budget_bytes
//     (publish-time rejection), and the same number bounds the *sum*
//     across bases — exceeded, the least-recently-touched base's tier is
//     invalidated (LRU across bases, whole caches at a time).
//
// Crash recovery (DESIGN.md "Service fault tolerance & recovery")
//   - With a journal_dir configured, every Open writes an `<id>.meta`
//     sidecar recording the OpenParams next to the session's `<id>.journal`
//     write-ahead log, and fsyncs the directory so both names survive a
//     crash.
//   - RecoverSessions() (called by the server at startup) scans the
//     directory: a meta+journal pair is replayed through
//     CleaningSession::RecoverToReplayEnd — tolerant torn-tail reader,
//     RNG-aligned deterministic replay — and re-registered under its
//     original id; a meta without a journal re-registers as a fresh
//     session (it never journaled anything); a journal without a meta is
//     a stale leftover and is deleted.
//   - A client-requested Close deletes both artifacts; graceful shutdown
//     (CloseAll) and idle eviction retain them so the session can resume
//     after a restart or via lazy Resume().
//
// Idempotent retries: mutating operations carry an optional per-session
// `seq` (monotonically increasing, starting at 1; 0 = legacy
// non-idempotent). The manager executes seq == last_seq + 1, caches the
// response in a bounded window, and answers a retried seq from the cache
// without re-executing. Stale (evicted) or gapped seqs fail with
// kFailedPrecondition. The window is in-memory only: it resets on daemon
// restart, and resumed clients re-sync from SessionStatus::last_seq.
#ifndef FALCON_SERVICE_SESSION_MANAGER_H_
#define FALCON_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"
#include "core/search.h"
#include "core/session.h"
#include "core/shared_base_cache.h"
#include "datagen/workload.h"
#include "service/scripted_oracle.h"

namespace falcon {

/// Manager-wide limits, fixed at construction.
struct ServiceLimits {
  /// Open() fails with kUnavailable once this many sessions are live.
  size_t max_sessions = 8;
  /// Total posting-index byte budget, sliced evenly across max_sessions
  /// (0 = unbounded caches).
  size_t posting_budget_bytes = 0;
  /// Directory for per-session write-ahead journals ("" disables
  /// journaling, and with it restart recovery).
  std::string journal_dir;
  /// Sessions idle longer than this are closed by EvictIdle() (0 = never).
  /// Evicted sessions keep their journal + meta and can be resumed.
  double idle_timeout_s = 0.0;
  /// Attach sessions on one base to a process-wide SharedBaseCache of
  /// postings + pairwise intersections (pure acceleration; bit-identical
  /// behaviour). Off restores fully independent per-session caches.
  bool shared_base_cache = true;
  /// Byte cap per shared cache *and* on the sum across bases (LRU
  /// whole-cache invalidation when the aggregate exceeds it; 0 = unbounded).
  size_t shared_cache_budget_bytes = 256u << 20;
  /// Lock stripes for the session registry (clamped to ≥ 1). Sessions
  /// hash to a stripe by id; more stripes = less registry contention at
  /// high session counts, at a few hundred bytes each.
  size_t session_shards = 16;
};

/// Per-session view returned by Step/Info.
struct SessionStatus {
  std::string id;
  std::string dataset;
  bool finished = false;
  size_t pending_cells = 0;    ///< Worklist + queued external updates.
  size_t queued_verdicts = 0;  ///< Client answers not yet consumed.
  size_t repairs = 0;          ///< Repair-log entries (retract indexes).
  uint32_t table_crc = 0;      ///< TableContentsCrc of the working table.
  uint64_t last_seq = 0;       ///< Highest idempotent seq applied.
  SessionMetrics metrics;
};

/// Manager-level health snapshot (the `ping` verb).
struct ServiceHealth {
  /// Seconds since the manager (≈ the daemon) was constructed.
  double uptime_s = 0.0;
  size_t live_sessions = 0;
  size_t max_sessions = 0;
  /// Sessions replayed from journals since construction (startup scan +
  /// lazy resumes).
  size_t recovered_sessions = 0;
  /// Aggregate *private-tier* posting-cache resident bytes across live
  /// sessions, as of each session's last status snapshot. Shared-tier
  /// bytes are deliberately excluded: they are resident once per base,
  /// not once per session, and are reported below.
  size_t posting_resident_bytes = 0;
  /// Shared base tier, counted once per base cache (never per session).
  size_t shared_bases = 0;           ///< bases_ entries with a live cache.
  size_t shared_resident_bytes = 0;  ///< Σ cache resident bytes.
  size_t shared_entries = 0;         ///< Σ cached postings+intersections.
  size_t shared_hits = 0;            ///< Σ posting+intersection hits.
  size_t shared_misses = 0;          ///< Σ posting+intersection misses.
  /// Streaming-append aggregates across live sessions (as of each
  /// session's last status snapshot).
  size_t rows_appended = 0;
  size_t append_batches = 0;
  /// Derived shared hit rate in [0, 1] (0.0 with no probes).
  double shared_hit_rate() const {
    size_t total = shared_hits + shared_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(shared_hits) /
                            static_cast<double>(total);
  }
};

class SessionManager {
 public:
  /// Parameters of one `open_session` request.
  struct OpenParams {
    std::string dataset = "Synth10k";
    double scale = 1.0;
    uint64_t seed = 1234;
    size_t budget = 3;
    double question_mistake_prob = 0.0;
    double update_mistake_prob = 0.0;
    std::string algorithm = "CoDive";
    /// Delta-maintain cached postings across repairs (SessionOptions::
    /// posting_delta); exposed so both posting modes are exercisable over
    /// the wire.
    bool posting_delta = true;
    /// Row-set representation (SessionOptions::compressed_rowsets);
    /// exposed so both representations are exercisable over the wire —
    /// the shared base tier keeps dense and compressed planes separate.
    bool compressed_rowsets = true;
  };

  explicit SessionManager(ServiceLimits limits);
  ~SessionManager();

  /// Creates a session; returns its id ("s-<n>"). kUnavailable when the
  /// session table is full (admission control — the caller should retry
  /// after a close or eviction).
  StatusOr<std::string> Open(const OpenParams& params);

  /// Resumes session `id`: returns immediately if it is live, otherwise
  /// recovers it from its on-disk journal + meta (evicted sessions, or a
  /// daemon restarted without a startup scan). kNotFound when neither
  /// exists.
  StatusOr<std::string> Resume(const std::string& id);

  /// Startup scan: replays every recoverable journal in journal_dir and
  /// re-registers the sessions under their original ids; deletes stale
  /// journals that lack a meta sidecar. Returns how many sessions were
  /// recovered. No-op without a journal_dir.
  size_t RecoverSessions();

  /// Runs up to `max_episodes` cleaning episodes (0 = to convergence).
  StatusOr<SessionStatus> Step(const std::string& id, size_t max_episodes,
                               uint64_t seq = 0);

  /// Queues an analyst cell repair; the next episode executes it.
  StatusOr<SessionStatus> UpdateCell(const std::string& id, uint32_t row,
                                     uint32_t col, const std::string& value,
                                     uint64_t seq = 0);

  /// Queues a validity verdict consumed by the next oracle question.
  StatusOr<SessionStatus> Answer(const std::string& id, bool valid,
                                 uint64_t seq = 0);

  /// Metrics + progress snapshot without running anything.
  StatusOr<SessionStatus> Info(const std::string& id);

  /// Retracts applied-repair log entry `repair_index` (newest-first rule
  /// applies; see CleaningSession::RetractRule).
  StatusOr<SessionStatus> Retract(const std::string& id, size_t repair_index,
                                  uint64_t seq = 0);

  /// Closes and destroys the session (waits for an in-flight operation)
  /// and deletes its journal + meta — the clean-close path.
  Status Close(const std::string& id);

  /// Closes sessions idle past the configured timeout; returns how many.
  /// Artifacts are retained so the sessions can be resumed.
  size_t EvictIdle();

  /// Graceful drain: closes every session, waiting for in-flight work.
  /// Artifacts are retained — sessions survive a daemon restart.
  void CloseAll();

  ServiceHealth Health() const;

  size_t active_sessions() const;
  const ServiceLimits& limits() const { return limits_; }

 private:
  struct ServiceSession {
    std::string id;
    std::string dataset;
    std::mutex mu;  ///< Serializes all operations on this session.
    std::shared_ptr<const CleaningWorkload> base;
    /// The base's shared read tier (null when disabled). Co-owned so a
    /// session outliving the manager's bases_ entry (straggler holding
    /// the shared_ptr) never dangles; the manager's release on last-close
    /// drops discoverability, refcounts handle the rest.
    std::shared_ptr<SharedBaseCache> shared_cache;
    std::string base_key;  ///< bases_ key, for the close-time release.
    Table working;         ///< COW clone of base->dirty.
    std::unique_ptr<ScriptedOracle> oracle;
    std::unique_ptr<SearchAlgorithm> algorithm;
    std::unique_ptr<CleaningSession> session;
    OpenParams params;  ///< For the meta sidecar + resume.
    /// Idempotency state (guarded by mu; in-memory only — resets on
    /// restart, clients re-sync from SessionStatus::last_seq).
    uint64_t last_seq = 0;
    std::deque<std::pair<uint64_t, StatusOr<SessionStatus>>> seq_window;
    /// steady_clock nanos of the last finished operation; atomic so the
    /// idle sweeper can read it without taking mu.
    std::atomic<int64_t> last_active_ns{0};
    /// Posting-cache bytes from the last Snapshot; atomic so Health() can
    /// aggregate without taking every session's mu.
    std::atomic<size_t> posting_resident_bytes{0};
    /// Streaming-append counters from the last Snapshot (same contract).
    std::atomic<size_t> rows_appended{0};
    std::atomic<size_t> append_batches{0};
    /// Set (under mu) once Close ran; late arrivals holding the shared_ptr
    /// observe it and report NotFound.
    bool closed = false;

    ServiceSession(std::shared_ptr<const CleaningWorkload> b)
        : base(std::move(b)), working(base->dirty.Clone()) {}
    void Touch() {
      last_active_ns.store(std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count(),
                           std::memory_order_relaxed);
    }
  };

  /// One cached immutable base plus its shared read tier and the count of
  /// live sessions attached to it.
  struct BaseEntry {
    std::shared_ptr<const CleaningWorkload> workload;
    /// Created on first attach, dropped when live_sessions returns to 0
    /// (the workload itself stays cached). Null while no session is open
    /// on this base or when limits_.shared_base_cache is off.
    std::shared_ptr<SharedBaseCache> cache;
    size_t live_sessions = 0;
    /// steady_clock nanos of the last operation by any attached session;
    /// the cross-base LRU invalidates the oldest tier first.
    int64_t last_touch_ns = 0;
  };

  /// Builds or fetches the shared immutable base for (dataset, scale);
  /// returns the workload and writes the bases_ key to *key_out.
  StatusOr<std::shared_ptr<const CleaningWorkload>> GetBase(
      const std::string& dataset, double scale, std::string* key_out);

  /// Registers a live session on its base under base_mu_: bumps the
  /// refcount and creates the shared tier if this is the first attach.
  /// Returns the cache to hand to the session (null when disabled).
  std::shared_ptr<SharedBaseCache> AttachBaseLocked(const std::string& key);
  /// Last-close bookkeeping under base_mu_: decrements the refcount and
  /// drops the base's shared tier when it reaches zero.
  void ReleaseBaseLocked(const std::string& key);
  /// Cross-base LRU: while Σ cache bytes exceeds the budget, invalidates
  /// the least-recently-touched tier with resident bytes. Call under
  /// base_mu_.
  void EnforceSharedBudgetLocked();
  /// Stamps the base's LRU clock and enforces the aggregate budget (takes
  /// base_mu_ briefly; called after session operations).
  void TouchBase(const std::string& key);

  StatusOr<std::shared_ptr<ServiceSession>> Lookup(const std::string& id);
  static SessionStatus Snapshot(ServiceSession& s);

  /// The idempotent-retry gate: checks `seq` against the session's window
  /// under its mutex, executes `op` exactly once for a fresh seq, caches
  /// and returns the response. seq == 0 bypasses the window entirely.
  StatusOr<SessionStatus> Mutate(
      const std::string& id, uint64_t seq,
      const std::function<StatusOr<SessionStatus>(ServiceSession&)>& op);

  /// Builds a ServiceSession (not yet registered) from OpenParams; the
  /// common construction path for Open, recovery, and resume.
  StatusOr<std::shared_ptr<ServiceSession>> Build(const OpenParams& params,
                                                  const std::string& id);

  /// Recovers one session from `<journal_dir>/<id>.{meta,journal}` and
  /// registers it under its original id.
  StatusOr<std::string> RecoverOne(const std::string& id);

  Status CloseInternal(const std::string& id, bool delete_artifacts);
  Status WriteMeta(const ServiceSession& s);
  void DeleteArtifacts(const std::string& id);

  std::string JournalPath(const std::string& id) const;
  std::string MetaPath(const std::string& id) const;

  /// One lock stripe of the session registry.
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<ServiceSession>> sessions;
  };
  Shard& ShardFor(const std::string& id);
  const Shard& ShardFor(const std::string& id) const;

  const ServiceLimits limits_;
  /// Session registry, lock-striped by id hash. Sized at construction;
  /// never resized (Shard is not movable).
  mutable std::vector<Shard> shards_;
  mutable std::mutex base_mu_;  ///< Guards bases_ (workloads + shared tiers).
  std::map<std::string, BaseEntry> bases_;
  std::atomic<uint64_t> next_id_{1};
  /// Live + under-construction sessions: reserved before Build, released
  /// on every failure path and at close — the race-free admission gate.
  std::atomic<size_t> session_count_{0};
  std::atomic<size_t> recovered_sessions_{0};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace falcon

#endif  // FALCON_SERVICE_SESSION_MANAGER_H_
