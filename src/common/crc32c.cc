#include "common/crc32c.h"

#include <array>

namespace falcon {
namespace {

// Byte-at-a-time lookup table for the reflected Castagnoli polynomial,
// generated once at first use.
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const std::array<uint32_t, 256>& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t state = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ p[i]) & 0xFF] ^ (state >> 8);
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace falcon
