#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace falcon {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  for (char c : s) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

int64_t ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return -1;
  int64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

bool ParseInt64Strict(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  bool negative = false;
  if (s[0] == '+' || s[0] == '-') {
    negative = s[0] == '-';
    s.remove_prefix(1);
    if (s.empty()) return false;
  }
  uint64_t magnitude = 0;
  const uint64_t limit =
      negative ? uint64_t{1} << 63 : (uint64_t{1} << 63) - 1;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (limit - digit) / 10) return false;  // Overflow.
    magnitude = magnitude * 10 + digit;
  }
  *out = negative ? -static_cast<int64_t>(magnitude - 1) - 1
                  : static_cast<int64_t>(magnitude);
  return true;
}

bool ParseDoubleStrict(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // strtod needs NUL termination; the flag values being parsed are short.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace falcon
