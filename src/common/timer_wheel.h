// Hashed timing wheel for the event-driven service transport.
//
// The epoll loop needs thousands of coarse deadlines (per-connection
// read/write timers) with O(1) arm/advance and no per-cancel bookkeeping.
// A classic hashed wheel fits: `buckets` slots of `tick_ms` width; an
// entry lands in the bucket of its due tick and is surfaced when the
// cursor passes it. Entries further out than one revolution are re-hashed
// when their bucket fires (standard cascading-by-rehash).
//
// Cancellation is lazy: the wheel never removes entries. The owner keeps
// the authoritative deadline per id and simply ignores (or re-schedules)
// stale firings — the cheapest correct scheme when timers are routinely
// re-armed, as per-connection I/O deadlines are.
//
// Single-threaded by design: owned and driven by one event loop.
#ifndef FALCON_COMMON_TIMER_WHEEL_H_
#define FALCON_COMMON_TIMER_WHEEL_H_

#include <cstdint>
#include <deque>
#include <vector>

namespace falcon {

class TimerWheel {
 public:
  /// `tick_ms` is the firing granularity (deadlines fire up to one tick
  /// late, never early); `buckets` × `tick_ms` is one revolution.
  explicit TimerWheel(int64_t now_ms, int64_t tick_ms = 50,
                      size_t buckets = 1024)
      : tick_ms_(tick_ms > 0 ? tick_ms : 1),
        buckets_(buckets > 1 ? buckets : 2),
        cursor_tick_(now_ms / tick_ms_) {}

  /// Arms `id` to fire at `due_ms` (absolute). Entries already due land in
  /// the current bucket and surface on the next Advance. Re-arming the
  /// same id leaves the older entry in place as a stale firing.
  void Schedule(uint64_t id, int64_t due_ms) {
    int64_t tick = due_ms / tick_ms_;
    if (tick < cursor_tick_) tick = cursor_tick_;
    buckets_[static_cast<size_t>(tick) % buckets_.size()].push_back(
        Entry{id, due_ms});
    ++armed_;
  }

  /// Advances the cursor to `now_ms`, appending every id whose entry came
  /// due to `*fired` (owners revalidate against their authoritative
  /// deadline). Not-yet-due entries in passed buckets (later revolutions)
  /// are re-hashed, not fired.
  void Advance(int64_t now_ms, std::vector<uint64_t>* fired) {
    int64_t target_tick = now_ms / tick_ms_;
    // Bound one call to a single revolution: after that every bucket has
    // been visited once and re-hashed entries are already placed right.
    int64_t steps = target_tick - cursor_tick_;
    if (steps > static_cast<int64_t>(buckets_.size())) {
      steps = static_cast<int64_t>(buckets_.size());
    }
    for (int64_t i = 0; i <= steps; ++i) {
      int64_t tick = cursor_tick_ + i;
      auto& bucket = buckets_[static_cast<size_t>(tick) % buckets_.size()];
      size_t pending = bucket.size();
      for (size_t n = 0; n < pending; ++n) {
        Entry e = bucket.front();
        bucket.pop_front();
        if (e.due_ms <= now_ms) {
          fired->push_back(e.id);
          --armed_;
        } else if (e.due_ms / tick_ms_ <= tick) {
          // Due this very tick but later in wall time: keep for the next
          // Advance call rather than spinning within the tick.
          bucket.push_back(e);
        } else {
          bucket.push_back(e);  // A later revolution; leave in place.
        }
      }
    }
    cursor_tick_ = target_tick;
  }

  /// Milliseconds until the next *possible* firing, or -1 when nothing is
  /// armed — the epoll_wait timeout. Conservative: returns one tick when
  /// any entry is armed (the wheel does not track a global minimum).
  int64_t NextTimeoutMs() const { return armed_ == 0 ? -1 : tick_ms_; }

  size_t armed() const { return armed_; }
  int64_t tick_ms() const { return tick_ms_; }

 private:
  struct Entry {
    uint64_t id;
    int64_t due_ms;
  };

  int64_t tick_ms_;
  std::vector<std::deque<Entry>> buckets_;
  int64_t cursor_tick_;
  size_t armed_ = 0;
};

}  // namespace falcon

#endif  // FALCON_COMMON_TIMER_WHEEL_H_
