// Status and StatusOr: exception-free error propagation used across the
// FALCON public API, following the conventions of production database
// codebases (Arrow, RocksDB, LevelDB).
#ifndef FALCON_COMMON_STATUS_H_
#define FALCON_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace falcon {

/// Error categories surfaced by the library. `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  /// A transient failure (e.g. an injected oracle outage) that is expected
  /// to succeed if retried; the session retries these with backoff.
  kUnavailable,
  /// The operation was deliberately stopped (e.g. a listener shut down
  /// during server drain); not an error worth surfacing to users.
  kCancelled,
  /// A per-request or per-line deadline expired (client read timeout,
  /// server evicting a stalled connection). Retryable at the caller's
  /// discretion — the work may or may not have executed, which is why the
  /// wire protocol's idempotent `seq` retry exists.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error result. The OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// True for failures worth retrying (currently kUnavailable).
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored StatusOr is a programming error (checked by assert in debug
/// builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: `return MakeTable(...);` style call sites.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace falcon

/// Propagates a non-OK Status from the current function.
#define FALCON_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::falcon::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates a StatusOr expression, propagating errors, else binding `lhs`.
#define FALCON_ASSIGN_OR_RETURN(lhs, expr)      \
  FALCON_ASSIGN_OR_RETURN_IMPL(                 \
      FALCON_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define FALCON_CONCAT_INNER_(a, b) a##b
#define FALCON_CONCAT_(a, b) FALCON_CONCAT_INNER_(a, b)
#define FALCON_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // FALCON_COMMON_STATUS_H_
