// AVX-512 kernel tier: 512-bit word loops with the VPOPCNTDQ instruction
// (8 per-lane 64-bit popcounts per cycle-ish step) and an 8-wide gathered
// array∩bitmap membership test using mask registers. Compiled with
// -mavx512f -mavx512bw -mavx512vl -mavx512vpopcntdq; only executed when
// CPUID reports all four (DetectLevel() == kAVX512). The sorted-array
// intersection reuses the SSE4.2 kernel from the AVX2 tier — 128-bit
// PCMPESTRM has no 512-bit counterpart worth the lane-crossing cost at
// array-container sizes (≤4096 elements).
#include "common/simd.h"

// Self-gating on the predefine set by -mavx512vpopcntdq (only added when
// the compiler supports it), mirroring simd_avx2.cc.
#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

namespace falcon {
namespace simd {
namespace internal {
namespace {

size_t Avx512PopcountWords(const uint64_t* w, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i a = _mm512_loadu_si512(w + i);
    __m512i b = _mm512_loadu_si512(w + i + 8);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(a));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(b));
  }
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(w + i)));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) count += static_cast<size_t>(_mm_popcnt_u64(w[i]));
  return count;
}

size_t Avx512AndCountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i x0 = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                  _mm512_loadu_si512(b + i));
    __m512i x1 = _mm512_and_si512(_mm512_loadu_si512(a + i + 8),
                                  _mm512_loadu_si512(b + i + 8));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x0));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x1));
  }
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                 _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<size_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return count;
}

size_t Avx512And3CountWords(uint64_t* dst, const uint64_t* a,
                            const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                 _mm512_loadu_si512(b + i));
    _mm512_storeu_si512(dst + i, w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
  }
  size_t count = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    dst[i] = w;
    count += static_cast<size_t>(_mm_popcnt_u64(w));
  }
  return count;
}

void Avx512AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_and_si512(_mm512_loadu_si512(dst + i),
                                                  _mm512_loadu_si512(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void Avx512AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // andnot computes ~first & second.
    _mm512_storeu_si512(
        dst + i, _mm512_andnot_si512(_mm512_loadu_si512(src + i),
                                     _mm512_loadu_si512(dst + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void Avx512OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i, _mm512_or_si512(_mm512_loadu_si512(dst + i),
                                                 _mm512_loadu_si512(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

size_t Avx512ArrayBitmapCount(const uint16_t* vals, size_t n,
                              const uint64_t* bits) {
  // Gather eight words per step, build 1<<(v&63) per lane, and let the
  // mask register do the membership test: one popcount per 8 values.
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i six3 = _mm512_set1_epi64(63);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i v16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    __m256i v32 = _mm256_cvtepu16_epi32(v16);
    __m256i word_idx = _mm256_srli_epi32(v32, 6);
    // Masked forms with an explicit zero source: the plain intrinsics go
    // through _mm512_undefined_epi32 and trip -Wmaybe-uninitialized.
    __m512i words = _mm512_mask_i32gather_epi64(_mm512_setzero_si512(),
                                                static_cast<__mmask8>(0xFF),
                                                word_idx, bits, 8);
    __m512i shifts = _mm512_and_si512(
        _mm512_maskz_cvtepu32_epi64(static_cast<__mmask8>(0xFF), v32), six3);
    __m512i sel = _mm512_sllv_epi64(one, shifts);
    __mmask8 hit = _mm512_test_epi64_mask(words, sel);
    count += static_cast<size_t>(_mm_popcnt_u32(hit));
  }
  for (; i < n; ++i) {
    uint16_t v = vals[i];
    count += (bits[v >> 6] >> (v & 63)) & 1;
  }
  return count;
}

}  // namespace

const Kernels* Avx512Kernels() {
  // Start from the AVX2 table (SSE4.2 array intersection) and override the
  // word loops and the gathered membership test with 512-bit versions.
  static const Kernels kernels = [] {
    Kernels k = *Avx2Kernels();
    k.popcount_words = Avx512PopcountWords;
    k.and_count_words = Avx512AndCountWords;
    k.and_words = Avx512AndWords;
    k.andnot_words = Avx512AndNotWords;
    k.or_words = Avx512OrWords;
    k.array_bitmap_count = Avx512ArrayBitmapCount;
    k.and3_count_words = Avx512And3CountWords;
    return k;
  }();
  return &kernels;
}

}  // namespace internal
}  // namespace simd
}  // namespace falcon

#else  // toolchain cannot target this AVX-512 subset

namespace falcon {
namespace simd {
namespace internal {

const Kernels* Avx512Kernels() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace falcon

#endif
