// Runtime-dispatched SIMD kernels for the container primitives that
// dominate the lattice/posting hot path: bitmap word loops (AND / ANDNOT /
// OR / popcount / fused and-count), sorted-u16 array intersection (the
// Roaring array-container kernel), and array-against-bitmap membership
// counting. Three tiers are compiled — portable scalar, AVX2, and AVX-512
// (with VPOPCNTDQ) — each in its own translation unit with the matching
// -m flags, and the best tier the CPU supports is selected once via CPUID
// on first use. The active tier can be forced down (never up past what the
// CPU supports) with the FALCON_SIMD_LEVEL environment variable or the
// --simd_level flag every binary exposes; tests use this to compare tiers
// bit-for-bit.
//
// All kernels are pure functions of their inputs and every tier returns
// bit-identical results — dispatch is a performance decision only, so the
// repo-wide determinism guarantees (canonical hashes, lazy/eager
// equivalence) hold under any tier.
#ifndef FALCON_COMMON_SIMD_H_
#define FALCON_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace falcon {

class Flags;  // common/flags.h — kept out of this low-level header.

namespace simd {

enum class Level : uint8_t {
  kScalar = 0,
  kAVX2 = 1,
  kAVX512 = 2,
};

/// Dispatch table of container primitives. One instance per compiled tier;
/// entries are never null in a published table.
struct Kernels {
  /// Population count over n words.
  size_t (*popcount_words)(const uint64_t* w, size_t n);
  /// popcount(a & b) over n words without materializing the AND.
  size_t (*and_count_words)(const uint64_t* a, const uint64_t* b, size_t n);
  /// dst &= src over n words.
  void (*and_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst &= ~src over n words.
  void (*andnot_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst |= src over n words.
  void (*or_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// Intersection of two sorted unique u16 arrays into out (out may not
  /// alias either input); returns the intersection size. `out` must have
  /// capacity for min(na, nb) + kIntersectSlack elements: the vector tiers
  /// compact matches with full 128-bit stores, so the bytes just past the
  /// returned count are scratch.
  size_t (*intersect_u16)(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb, uint16_t* out);
  /// Cardinality-only variant of intersect_u16.
  size_t (*intersect_u16_count)(const uint16_t* a, size_t na,
                                const uint16_t* b, size_t nb);
  /// Number of vals present in the 1024-word bitmap `bits` (vals sorted
  /// unique u16; bits spans the full 65536-row chunk).
  size_t (*array_bitmap_count)(const uint16_t* vals, size_t n,
                               const uint64_t* bits);
  /// dst[i] = a[i] & b[i] with the popcount of the result accumulated in
  /// registers; returns the count. One pass over two read streams and one
  /// write stream — replaces the copy-then-And-then-popcount sequence
  /// (five memory passes) that dominates bitmap materialization. dst may
  /// alias a or b exactly (in-place) but must not partially overlap.
  size_t (*and3_count_words)(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t n);
};

/// Best tier the running CPU supports (CPUID probe; cached).
Level DetectLevel();

/// The tier currently in effect: min(DetectLevel(), any FALCON_SIMD_LEVEL
/// override). Resolved once on first use.
Level ActiveLevel();

/// "scalar" | "avx2" | "avx512".
const char* LevelName(Level level);

/// Parses "scalar"/"avx2"/"avx512"/"auto" (auto → DetectLevel()).
StatusOr<Level> ParseLevel(std::string_view name);

/// Forces the active tier (clamped to DetectLevel(); requesting an
/// unsupported tier degrades with a warning rather than crashing on an
/// illegal instruction). Accepts the same spellings as ParseLevel.
Status SetLevel(std::string_view name);

/// The active dispatch table.
const Kernels& Active();

/// Per-tier tables, for equivalence tests that compare tiers directly.
/// Returns nullptr when the CPU cannot execute that tier.
const Kernels* TableFor(Level level);

/// Registers and applies the --simd_level flag (auto|scalar|avx2|avx512;
/// default auto) shared by every binary. An unparsable value dies with a
/// diagnostic before any kernel runs; an unsupported-but-valid tier
/// degrades to the best the CPU has, with a warning (same as SetLevel).
void ApplyLevelFlag(const Flags& flags);

// ---------------------------------------------------------------------------
// Hot-path wrappers. One indirect call through the table; the word-loop
// kernels amortize it over whole containers.
// ---------------------------------------------------------------------------

inline size_t PopcountWords(const uint64_t* w, size_t n) {
  return Active().popcount_words(w, n);
}

inline size_t AndCountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  return Active().and_count_words(a, b, n);
}

inline void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Active().and_words(dst, src, n);
}

inline void AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Active().andnot_words(dst, src, n);
}

inline void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Active().or_words(dst, src, n);
}

inline size_t IntersectU16(const uint16_t* a, size_t na, const uint16_t* b,
                           size_t nb, uint16_t* out) {
  return Active().intersect_u16(a, na, b, nb, out);
}

inline size_t IntersectU16Count(const uint16_t* a, size_t na,
                                const uint16_t* b, size_t nb) {
  return Active().intersect_u16_count(a, na, b, nb);
}

inline size_t ArrayBitmapCount(const uint16_t* vals, size_t n,
                               const uint64_t* bits) {
  return Active().array_bitmap_count(vals, n, bits);
}

inline size_t And3CountWords(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t n) {
  return Active().and3_count_words(dst, a, b, n);
}

// ---------------------------------------------------------------------------
// Tuning constants shared by all tiers (measured on the dev box — see
// DESIGN.md "SIMD dispatch & batch cost model" for the methodology).
// ---------------------------------------------------------------------------

/// Array∩array switches from the element-wise kernel to galloping (binary
/// probes of the large side) when |large|/|small| reaches these ratios.
/// The vector merge kernel consumes 8 elements per step, so it stays
/// competitive with log2(|large|) probes to much larger skews than the
/// scalar merge does — hence a higher crossover for the SIMD tiers.
inline constexpr size_t kGallopRatioScalar = 32;
inline constexpr size_t kGallopRatioSimd = 64;

/// Extra capacity intersect_u16 callers must reserve past min(na, nb): the
/// SSE compaction stores a whole 8-lane vector at out + count, so the last
/// store can overrun the true intersection size by up to 7 elements.
inline constexpr size_t kIntersectSlack = 8;

namespace internal {

// Per-tier tables, each defined in its own TU compiled with the matching
// -m flags. Avx2Kernels()/Avx512Kernels() return nullptr when the build
// could not compile that tier (non-x86 target); callers additionally gate
// on DetectLevel() before executing them.
const Kernels* ScalarKernels();
const Kernels* Avx2Kernels();
const Kernels* Avx512Kernels();

}  // namespace internal

}  // namespace simd
}  // namespace falcon

#endif  // FALCON_COMMON_SIMD_H_
