#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/str_util.h"

namespace falcon {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = queue_.back();
      queue_.pop_back();
    }
    (*task.fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t min_grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t shards = workers_.size() + 1;  // Caller participates too.
  if (shards <= 1 || n < min_grain) {
    fn(0, n);
    return;
  }
  shards = std::min(shards, (n + min_grain - 1) / min_grain);
  size_t chunk = (n + shards - 1) / shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 1; s < shards; ++s) {
      queue_.push_back({&fn, s * chunk, std::min(n, (s + 1) * chunk)});
    }
    pending_ += shards - 1;
  }
  work_cv_.notify_all();
  fn(0, std::min(n, chunk));  // Shard 0 runs on the calling thread.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

StatusOr<size_t> ParseThreadCount(std::string_view value) {
  int64_t v = 0;
  if (!ParseInt64Strict(value, &v)) {
    return Status::InvalidArgument("thread count '" + std::string(value) +
                                   "' is not an integer");
  }
  if (v < 1) {
    return Status::InvalidArgument("thread count must be >= 1, got '" +
                                   std::string(value) + "'");
  }
  if (v > 4096) {
    return Status::InvalidArgument("thread count '" + std::string(value) +
                                   "' exceeds the 4096 sanity cap");
  }
  return static_cast<size_t>(v);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("FALCON_THREADS")) {
      StatusOr<size_t> parsed = ParseThreadCount(env);
      if (parsed.ok()) {
        threads = *parsed;
      } else {
        FALCON_LOG(Warning) << "ignoring FALCON_THREADS: "
                            << parsed.status().ToString()
                            << "; using hardware concurrency (" << threads
                            << ")";
      }
    }
    // The pool holds threads *beyond* the caller; size 1 → inline.
    return new ThreadPool(threads > 0 ? threads - 1 : 0);
  }();
  return *pool;
}

}  // namespace falcon
