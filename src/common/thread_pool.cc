#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/str_util.h"

namespace falcon {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunTask(const Task& task, std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  (*task.fn)(task.begin, task.end);
  lock.lock();
  if (--task.batch->pending == 0) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    Task task = queue_.back();
    queue_.pop_back();
    RunTask(task, lock);
  }
}

void ThreadPool::ParallelFor(size_t n, size_t min_grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t shards = workers_.size() + 1;  // Caller participates too.
  if (shards <= 1 || n < min_grain) {
    fn(0, n);
    return;
  }
  shards = std::min(shards, (n + min_grain - 1) / min_grain);
  size_t chunk = (n + shards - 1) / shards;
  Batch batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 1; s < shards; ++s) {
      queue_.push_back({&fn, s * chunk, std::min(n, (s + 1) * chunk), &batch});
    }
    batch.pending = shards - 1;
  }
  work_cv_.notify_all();
  // A nested caller (this thread is itself a pool worker) may have peers
  // blocked in done_cv_ waits; wake them so they can steal the new tasks.
  done_cv_.notify_all();
  fn(0, std::min(n, chunk));  // Shard 0 runs on the calling thread.
  // Wait for this call's shards, stealing queued work (any batch) while
  // blocked. Nested and concurrent ParallelFor calls therefore always make
  // progress even when every pool thread is inside a wait.
  std::unique_lock<std::mutex> lock(mu_);
  while (batch.pending > 0) {
    if (!queue_.empty()) {
      Task task = queue_.back();
      queue_.pop_back();
      RunTask(task, lock);
      continue;
    }
    done_cv_.wait(lock,
                  [&] { return batch.pending == 0 || !queue_.empty(); });
  }
}

StatusOr<size_t> ParseThreadCount(std::string_view value) {
  int64_t v = 0;
  if (!ParseInt64Strict(value, &v)) {
    return Status::InvalidArgument("thread count '" + std::string(value) +
                                   "' is not an integer");
  }
  if (v < 1) {
    return Status::InvalidArgument("thread count must be >= 1, got '" +
                                   std::string(value) + "'");
  }
  if (v > 4096) {
    return Status::InvalidArgument("thread count '" + std::string(value) +
                                   "' exceeds the 4096 sanity cap");
  }
  return static_cast<size_t>(v);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("FALCON_THREADS")) {
      StatusOr<size_t> parsed = ParseThreadCount(env);
      if (parsed.ok()) {
        threads = *parsed;
      } else {
        FALCON_LOG(Warning) << "ignoring FALCON_THREADS: "
                            << parsed.status().ToString()
                            << "; using hardware concurrency (" << threads
                            << ")";
      }
    }
    // The pool holds threads *beyond* the caller; size 1 → inline.
    return new ThreadPool(threads > 0 ? threads - 1 : 0);
  }();
  return *pool;
}

}  // namespace falcon
