// Small string helpers shared across modules (CSV, SQLU printing/parsing,
// dataset generation).
#ifndef FALCON_COMMON_STR_UTIL_H_
#define FALCON_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace falcon {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII in place, returning a copy.
std::string ToUpper(std::string_view s);

/// Lowercases ASCII in place, returning a copy.
std::string ToLower(std::string_view s);

/// True iff `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Quotes a value for SQL output: wraps in single quotes, doubling any
/// embedded single quote.
std::string SqlQuote(std::string_view s);

/// Parses a non-negative integer; returns -1 on malformed input.
int64_t ParseInt64(std::string_view s);

/// Strict signed integer parse: optional +/- sign then digits, with
/// surrounding whitespace tolerated. Returns false (leaving *out untouched)
/// on empty input, stray characters, or overflow — unlike std::stoll, which
/// silently accepts "8abc" as 8.
bool ParseInt64Strict(std::string_view s, int64_t* out);

/// Strict double parse: the whole (trimmed) input must be consumed.
bool ParseDoubleStrict(std::string_view s, double* out);

}  // namespace falcon

#endif  // FALCON_COMMON_STR_UTIL_H_
