// Scalar kernel tier plus the runtime dispatch plumbing. The scalar
// kernels are the portable reference implementations every other tier is
// tested against; they are also what ships on CPUs without AVX2. This TU
// is compiled with the project's baseline flags only — no -m options — so
// the fallback really is executable anywhere.
#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/flags.h"
#include "common/logging.h"

namespace falcon {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels. The word loops are written as plain reductions so the
// compiler's autovectorizer can do what it wants with the baseline ISA;
// hand-unrolling here measured slower under -O3.
// ---------------------------------------------------------------------------

size_t ScalarPopcountWords(const uint64_t* w, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += std::popcount(w[i]);
  return count;
}

size_t ScalarAndCountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += std::popcount(a[i] & b[i]);
  return count;
}

void ScalarAndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void ScalarAndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void ScalarOrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

size_t ScalarAnd3CountWords(uint64_t* dst, const uint64_t* a,
                            const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    dst[i] = w;
    count += std::popcount(w);
  }
  return count;
}

// Galloping intersection: binary-probe the large side for each element of
// the small side. Shared by all tiers for heavily skewed inputs.
template <bool kMaterialize>
size_t GallopIntersect(const uint16_t* small, size_t ns,
                       const uint16_t* large, size_t nl, uint16_t* out) {
  size_t count = 0;
  size_t lo = 0;
  for (size_t i = 0; i < ns && lo < nl; ++i) {
    uint16_t v = small[i];
    // Exponential probe then binary search within the bracketed range.
    size_t step = 1;
    size_t hi = lo;
    while (hi < nl && large[hi] < v) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > nl) hi = nl;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (large[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < nl && large[lo] == v) {
      if constexpr (kMaterialize) out[count] = v;
      ++count;
      ++lo;
    }
  }
  return count;
}

template <bool kMaterialize>
size_t ScalarIntersectImpl(const uint16_t* a, size_t na, const uint16_t* b,
                           size_t nb, uint16_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb / na >= kGallopRatioScalar) {
    return GallopIntersect<kMaterialize>(a, na, b, nb, out);
  }
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    uint16_t va = a[i], vb = b[j];
    if (va == vb) {
      if constexpr (kMaterialize) out[count] = va;
      ++count;
      ++i;
      ++j;
    } else if (va < vb) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

size_t ScalarIntersectU16(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb, uint16_t* out) {
  return ScalarIntersectImpl<true>(a, na, b, nb, out);
}

size_t ScalarIntersectU16Count(const uint16_t* a, size_t na,
                               const uint16_t* b, size_t nb) {
  return ScalarIntersectImpl<false>(a, na, b, nb, nullptr);
}

size_t ScalarArrayBitmapCount(const uint16_t* vals, size_t n,
                              const uint64_t* bits) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    uint16_t v = vals[i];
    count += (bits[v >> 6] >> (v & 63)) & 1;
  }
  return count;
}

constexpr Kernels kScalarKernels = {
    ScalarPopcountWords,   ScalarAndCountWords,    ScalarAndWords,
    ScalarAndNotWords,     ScalarOrWords,          ScalarIntersectU16,
    ScalarIntersectU16Count, ScalarArrayBitmapCount, ScalarAnd3CountWords,
};

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

// The active table is published through an atomic pointer so SetLevel (used
// by tests and flag parsing at startup) is safe against concurrent readers.
std::atomic<const Kernels*> g_active{nullptr};
std::atomic<Level> g_active_level{Level::kScalar};

Level ResolveInitialLevel() {
  Level level = DetectLevel();
  if (const char* env = std::getenv("FALCON_SIMD_LEVEL")) {
    StatusOr<Level> parsed = ParseLevel(env);
    if (!parsed.ok()) {
      FALCON_LOG(Warning) << "ignoring FALCON_SIMD_LEVEL: "
                          << parsed.status().ToString();
    } else if (*parsed > level) {
      FALCON_LOG(Warning) << "FALCON_SIMD_LEVEL=" << LevelName(*parsed)
                          << " not supported by this CPU; using "
                          << LevelName(level);
    } else {
      level = *parsed;
    }
  }
  return level;
}

const Kernels* Publish(Level level) {
  const Kernels* table = TableFor(level);
  FALCON_CHECK(table != nullptr);
  g_active_level.store(level, std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return table;
}

const Kernels* InitOnce() {
  // First use resolves env + CPUID once; later SetLevel calls overwrite.
  static const Kernels* table = Publish(ResolveInitialLevel());
  return table;
}

}  // namespace

Level DetectLevel() {
  static const Level level = [] {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    // The AVX-512 tier uses F+BW+VL plus VPOPCNTDQ for the popcount loops.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vpopcntdq")) {
      return Level::kAVX512;
    }
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("sse4.2")) {
      return Level::kAVX2;
    }
#endif
    return Level::kScalar;
  }();
  return level;
}

Level ActiveLevel() {
  InitOnce();
  return g_active_level.load(std::memory_order_relaxed);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAVX2:
      return "avx2";
    case Level::kAVX512:
      return "avx512";
  }
  return "unknown";
}

StatusOr<Level> ParseLevel(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAVX2;
  if (name == "avx512") return Level::kAVX512;
  if (name == "auto") return DetectLevel();
  return Status::InvalidArgument("unknown SIMD level '" + std::string(name) +
                                 "' (want scalar|avx2|avx512|auto)");
}

Status SetLevel(std::string_view name) {
  StatusOr<Level> parsed = ParseLevel(name);
  if (!parsed.ok()) return parsed.status();
  Level level = *parsed;
  if (level > DetectLevel()) {
    FALCON_LOG(Warning) << "SIMD level " << LevelName(level)
                        << " not supported by this CPU; using "
                        << LevelName(DetectLevel());
    level = DetectLevel();
  }
  Publish(level);
  return Status::Ok();
}

const Kernels& Active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = InitOnce();
  return *table;
}

void ApplyLevelFlag(const Flags& flags) {
  std::string level = flags.GetString(
      "simd_level", "auto",
      "SIMD kernel tier: auto|scalar|avx2|avx512 (clamped to CPU support; "
      "FALCON_SIMD_LEVEL env is the flagless equivalent)");
  Status st = SetLevel(level);
  if (!st.ok()) {
    FALCON_LOG(Error) << "--simd_level=" << level << ": " << st.ToString();
    std::exit(2);
  }
}

const Kernels* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarKernels;
    case Level::kAVX2:
      return DetectLevel() >= Level::kAVX2 ? internal::Avx2Kernels()
                                           : nullptr;
    case Level::kAVX512:
      return DetectLevel() >= Level::kAVX512 ? internal::Avx512Kernels()
                                             : nullptr;
  }
  return nullptr;
}

namespace internal {

const Kernels* ScalarKernels() { return &kScalarKernels; }

}  // namespace internal

}  // namespace simd
}  // namespace falcon
