// FaultInjector: deterministic fault injection for the crash-safety
// harness. Code paths that can fail in production (journal writes, oracle
// calls, mid-apply table writes) call Hit("site.name") at each injectable
// point; the injector counts hits per site and, when armed, fails a chosen
// window of hits with a chosen StatusCode. Because hits are counted (not
// sampled) the same arming always fails the same operation, which is what
// the fault-sweep driver needs to enumerate and replay every crash point.
//
// A seeded probabilistic mode (FaultSpec::probability) exists for soak-style
// runs; it draws from its own Rng so a given seed fails the same hits on
// every run.
//
// Arming sources:
//  - programmatic: FaultInjector::Global().Arm({...}) (tests, sweep driver);
//  - the FALCON_FAULTS environment flag, parsed once at first Global() use:
//      FALCON_FAULTS="site:nth[:count[:kind]][,more...]"
//    where `kind` is `crash` (kIoError, default) or `transient`
//    (kUnavailable — retried with backoff by the session's oracle path).
//
// Sites currently instrumented (see DESIGN.md "Fault tolerance & recovery"):
//   journal.append   fail before a record write (clean journal tail)
//   journal.torn     write a partial record, then fail (torn tail)
//   journal.sync     fail the checkpoint flush/fsync
//   oracle.answer    fail an oracle call (transient faults are retried)
//   apply.rule       fail before a validated rule starts executing
//   apply.write      fail before the N-th row write of rule execution
//   manual.write     fail before a manual single-cell fix writes
//   session.update   fail at the top of a user-update iteration
//
// Service-layer sites (server transport + journal-dir durability; see
// DESIGN.md "Service fault tolerance & recovery"):
//   service.accept            drop a freshly-accepted connection
//   service.read              torn line read on a server connection
//   service.write             partial response write, then failure
//   service.stall             stalled client: the reader's deadline fires
//   service.journal_dir_sync  fail the journal-directory fsync
//
// Thread-safety: Hit() takes a mutex only when the injector is active
// (armed or recording); the common disarmed case is a single relaxed load.
#ifndef FALCON_COMMON_FAULT_INJECTOR_H_
#define FALCON_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace falcon {

/// One armed fault: hits `nth`..`nth+count-1` of `site` fail with `code`;
/// or, when `probability` > 0, each hit fails with that probability drawn
/// from a generator seeded with `seed`.
struct FaultSpec {
  std::string site;
  size_t nth = 1;    ///< 1-based hit index at which failures start.
  size_t count = 1;  ///< Number of consecutive failing hits.
  StatusCode code = StatusCode::kIoError;
  double probability = 0.0;  ///< 0 = deterministic nth-hit mode.
  uint64_t seed = 1;         ///< Seed for the probabilistic mode.
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms one fault. Multiple arms (even on one site) may coexist.
  void Arm(FaultSpec spec);

  /// Parses and arms a FALCON_FAULTS-syntax string. Returns
  /// InvalidArgument (arming nothing) on malformed input.
  Status ArmFromFlag(std::string_view flag);

  /// Disarms everything and zeroes all hit counters.
  void Reset();

  /// Zeroes hit counters, keeping arms (rarely wanted; sweeps use Reset).
  void ResetCounters();

  /// Count hits per site even with nothing armed — the sweep's discovery
  /// pass runs once with recording on to learn how many injectable points
  /// a workload passes through.
  void set_recording(bool recording);

  /// Registers one pass through injectable point `site`. Returns a non-OK
  /// Status when an armed fault covers this hit, else OK.
  Status Hit(std::string_view site);

  /// Hits recorded for `site` since the last Reset.
  size_t HitCount(const std::string& site) const;

  /// All (site, hit count) pairs, sorted by site name for determinism.
  std::vector<std::pair<std::string, size_t>> Counts() const;

  /// True when any arm or recording is in effect (Hit() is a single atomic
  /// load otherwise).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Process-wide instance; arms from the FALCON_FAULTS environment
  /// variable (malformed specs log a warning and are ignored).
  static FaultInjector& Global();

 private:
  void UpdateActive();

  mutable std::mutex mu_;
  std::atomic<bool> active_{false};
  bool recording_ = false;
  std::vector<FaultSpec> arms_;
  std::vector<Rng> arm_rngs_;  // Parallel to arms_ (probabilistic mode).
  std::unordered_map<std::string, size_t> counts_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_FAULT_INJECTOR_H_
