// ValuePool: append-only string interner shared by the clean and dirty
// instances of a dataset so that equal strings have equal ids across tables.
#ifndef FALCON_COMMON_INTERNER_H_
#define FALCON_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace falcon {

/// Identifier of an interned value. `kNullValueId` represents SQL NULL.
using ValueId = uint32_t;

inline constexpr ValueId kNullValueId = 0;

/// Append-only dictionary mapping strings to dense ids. Id 0 is reserved for
/// NULL; the empty string is a regular (non-null) value.
///
/// The pool is deliberately not thread-safe: FALCON sessions are
/// single-threaded interactive loops, and benchmarks shard by pool.
class ValuePool {
 public:
  ValuePool() {
    // Slot 0: NULL. The empty string maps to NULL — CSV blanks and SQL
    // NULLs are treated uniformly.
    strings_.emplace_back("");
    ids_.emplace(strings_.back(), kNullValueId);
  }

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Interns `s` and returns its id; returns the existing id if present.
  ValueId Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    ValueId id = static_cast<ValueId>(strings_.size());
    strings_.emplace_back(s);
    // string_view key points into strings_, whose elements are stable
    // (std::string contents never move once emplaced; the vector may
    // reallocate its pointer array but the heap buffers survive except for
    // SSO strings). Use the stored string as the key source.
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s`, or kNullValueId if it was never interned.
  ValueId Lookup(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kNullValueId : it->second;
  }

  /// Returns the string for `id`. NULL renders as the empty string.
  std::string_view Get(ValueId id) const { return strings_[id]; }

  /// Number of interned values including the NULL slot.
  size_t size() const { return strings_.size(); }

 private:
  // Heterogeneous string_view lookup into a string-keyed map.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>()(sv);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<std::string> strings_;
  std::unordered_map<std::string, ValueId, StringHash, StringEq> ids_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_INTERNER_H_
