// ValuePool: append-only string interner shared by the clean and dirty
// instances of a dataset so that equal strings have equal ids across tables.
#ifndef FALCON_COMMON_INTERNER_H_
#define FALCON_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

namespace falcon {

/// Identifier of an interned value. `kNullValueId` represents SQL NULL.
using ValueId = uint32_t;

inline constexpr ValueId kNullValueId = 0;

/// Append-only dictionary mapping strings to dense ids. Id 0 is reserved for
/// NULL; the empty string is a regular (non-null) value.
///
/// Thread-safety: concurrent cleaning sessions share one pool (their tables
/// are copy-on-write snapshots of the same base instances), so all methods
/// are safe to call from many threads. Reads take a shared lock; Intern
/// upgrades to exclusive only on first sight of a value. Storage is a deque
/// so element addresses are stable — a string_view from Get() stays valid
/// for the pool's lifetime even while other threads intern.
///
/// Determinism note: the *ids* assigned to values interned concurrently
/// depend on thread interleaving, but every consumer compares values by
/// id-equality within one pool (equal strings always share one id) or by
/// text, so session outcomes are interleaving-independent.
class ValuePool {
 public:
  ValuePool() {
    // Slot 0: NULL. The empty string maps to NULL — CSV blanks and SQL
    // NULLs are treated uniformly.
    strings_.emplace_back("");
    ids_.emplace(strings_.back(), kNullValueId);
  }

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Interns `s` and returns its id; returns the existing id if present.
  ValueId Intern(std::string_view s) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = ids_.find(s);
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(s);  // Re-check: another thread may have won.
    if (it != ids_.end()) return it->second;
    ValueId id = static_cast<ValueId>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Interns `n` strings in one pass, writing their ids to `out[0..n)`.
  /// Equivalent to calling Intern per element but takes the locks once:
  /// a shared-lock probe resolves already-known values, then a single
  /// exclusive section inserts the misses in order. New ids are assigned
  /// in first-occurrence order within the batch, so single-threaded batch
  /// ingest assigns the same ids as the per-row loop it replaces.
  void InternBatch(std::span<const std::string_view> values, ValueId* out) {
    size_t misses = 0;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      for (size_t i = 0; i < values.size(); ++i) {
        auto it = ids_.find(values[i]);
        if (it != ids_.end()) {
          out[i] = it->second;
        } else {
          out[i] = kPendingId;
          ++misses;
        }
      }
    }
    if (misses == 0) return;
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (size_t i = 0; i < values.size(); ++i) {
      if (out[i] != kPendingId) continue;
      auto it = ids_.find(values[i]);  // Re-check: racing interner may win.
      if (it != ids_.end()) {
        out[i] = it->second;
        continue;
      }
      ValueId id = static_cast<ValueId>(strings_.size());
      strings_.emplace_back(values[i]);
      ids_.emplace(strings_.back(), id);
      out[i] = id;
    }
  }

  /// Pre-sizes the id map for about `expected_values` distinct values to
  /// avoid rehash storms during bulk ingest. Purely a hint.
  void Reserve(size_t expected_values) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ids_.reserve(expected_values);
  }

  /// Returns the id for `s`, or kNullValueId if it was never interned.
  ValueId Lookup(std::string_view s) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(s);
    return it == ids_.end() ? kNullValueId : it->second;
  }

  /// Returns the string for `id`. NULL renders as the empty string. The
  /// view stays valid for the pool's lifetime (deque elements never move).
  std::string_view Get(ValueId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return strings_[id];
  }

  /// Number of interned values including the NULL slot.
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return strings_.size();
  }

 private:
  // InternBatch marker for slots whose value was absent during the shared
  // probe. A pool would need 2^32-1 live strings before a real id collides.
  static constexpr ValueId kPendingId = 0xFFFFFFFFu;

  // Heterogeneous string_view lookup into a string-keyed map.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>()(sv);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;
  std::unordered_map<std::string, ValueId, StringHash, StringEq> ids_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_INTERNER_H_
