// Thin POSIX socket helpers for the service layer: listeners over Unix
// domain or TCP sockets, blocking connect, and a buffered line channel
// matching the wire protocol's "one JSON value per \n-terminated line"
// framing. All calls are blocking; concurrency lives in the server's
// thread structure, not here.
#ifndef FALCON_COMMON_SOCKET_H_
#define FALCON_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace falcon {

/// Owning wrapper around a file descriptor (closes on destruction).
class FdHolder {
 public:
  FdHolder() = default;
  explicit FdHolder(int fd) : fd_(fd) {}
  FdHolder(FdHolder&& other) noexcept : fd_(other.release()) {}
  FdHolder& operator=(FdHolder&& other) noexcept;
  FdHolder(const FdHolder&) = delete;
  FdHolder& operator=(const FdHolder&) = delete;
  ~FdHolder() { Close(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket. Move-only; closes (and for Unix sockets unlinks the
/// path) on destruction.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;
  ~Listener();

  /// Listens on a Unix domain socket at `path` (unlinking any stale file
  /// first). The socket file is removed again when the Listener dies.
  static StatusOr<Listener> ListenUnix(const std::string& path,
                                       int backlog = 64);

  /// Listens on 127.0.0.1:`port` (port 0 picks an ephemeral port; read it
  /// back with bound_port()).
  static StatusOr<Listener> ListenTcp(uint16_t port, int backlog = 64);

  /// Blocks for the next connection, retrying on EINTR and ECONNABORTED.
  /// Returns a connected fd. Fails with kCancelled once the listening fd
  /// has been shut down (see Shutdown), which is how the acceptor thread
  /// exits; descriptor exhaustion (EMFILE/ENFILE) surfaces as the
  /// retryable kUnavailable so the accept loop can back off instead of
  /// dying.
  StatusOr<FdHolder> Accept();

  /// Unblocks any Accept() in progress and makes future ones fail.
  void Shutdown();

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.fd(); }
  uint16_t bound_port() const { return bound_port_; }
  const std::string& unix_path() const { return unix_path_; }

 private:
  FdHolder fd_;
  uint16_t bound_port_ = 0;  ///< TCP only.
  std::string unix_path_;    ///< Unix only; unlinked on destruction.
};

/// Connects to a Unix domain socket at `path`.
StatusOr<FdHolder> ConnectUnix(const std::string& path);

/// Connects to 127.0.0.1:`port`.
StatusOr<FdHolder> ConnectTcp(uint16_t port);

/// Bounds every send() on `fd` to `ms` milliseconds (SO_SNDTIMEO); an
/// expired send surfaces as kDeadlineExceeded from LineChannel::WriteLine.
/// A peer that stops draining its socket then cannot pin a writer forever.
Status SetSendTimeout(int fd, int64_t ms);

/// Switches `fd` to non-blocking mode (O_NONBLOCK) for use with the
/// server's epoll loop; recv/send then return EAGAIN instead of blocking.
Status SetNonBlocking(int fd);

/// Buffered, line-oriented I/O over a connected socket. Not thread-safe;
/// the server gives each connection exactly one reader.
class LineChannel {
 public:
  /// Takes ownership of `fd`. `max_line` bounds one request so a hostile
  /// or broken peer can't balloon memory.
  explicit LineChannel(FdHolder fd, size_t max_line = size_t{1} << 20)
      : fd_(std::move(fd)), max_line_(max_line) {}

  /// Reads up to and including the next '\n' (stripped from the result).
  /// Clean EOF before any bytes of a line → ok with *eof=true. EOF mid-line
  /// or an oversized line is an error; an expired read deadline (see
  /// set_read_deadline) is kDeadlineExceeded.
  Status ReadLine(std::string* line, bool* eof);

  /// Writes `line` plus a trailing '\n', looping over partial writes.
  /// SIGPIPE is suppressed (MSG_NOSIGNAL); a closed peer surfaces as a
  /// Status instead of killing the process. With a send timeout on the fd
  /// (SetSendTimeout), a stalled peer surfaces as kDeadlineExceeded.
  Status WriteLine(std::string_view line);

  /// Bounds how long ReadLine may take to complete one line (0 disables).
  /// With `from_first_byte` the clock only starts once partial data for
  /// the current line exists — the server's mode: an idle connection may
  /// wait for its next request forever, but a slowloris that started a
  /// line must finish it within the deadline. Without it the clock starts
  /// at ReadLine entry — the client's mode: a response is due as a whole.
  void set_read_deadline(int64_t ms, bool from_first_byte) {
    read_deadline_ms_ = ms;
    deadline_from_first_byte_ = from_first_byte;
  }

  /// Enables deterministic transport-fault injection on this channel: each
  /// recv hits `<prefix>read`, each write hits `<prefix>write` (failing
  /// after a deliberate partial send — a torn response line), and each
  /// deadline poll hits `<prefix>stall` (an injected kDeadlineExceeded
  /// simulates a stalled peer). Empty (the default) disables injection, so
  /// client channels never trip server-site arms.
  void set_fault_site_prefix(std::string prefix) {
    fault_prefix_ = std::move(prefix);
  }

  int fd() const { return fd_.fd(); }
  bool valid() const { return fd_.valid(); }

 private:
  FdHolder fd_;
  size_t max_line_;
  std::string buffer_;  ///< Bytes read but not yet returned.
  int64_t read_deadline_ms_ = 0;
  bool deadline_from_first_byte_ = false;
  std::string fault_prefix_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_SOCKET_H_
