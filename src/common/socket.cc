#include "common/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace falcon {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

FdHolder& FdHolder::operator=(FdHolder&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.release();
  }
  return *this;
}

void FdHolder::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (!unix_path_.empty() && fd_.valid()) {
    ::unlink(unix_path_.c_str());
  }
}

StatusOr<Listener> Listener::ListenUnix(const std::string& path,
                                        int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  Listener l;
  l.fd_ = FdHolder(fd);
  ::unlink(path.c_str());  // Remove a stale socket from a previous run.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind(" + path + ")");
  }
  l.unix_path_ = path;
  if (::listen(fd, backlog) != 0) return Errno("listen(" + path + ")");
  return l;
}

StatusOr<Listener> Listener::ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  Listener l;
  l.fd_ = FdHolder(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  l.bound_port_ = ntohs(addr.sin_port);
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return l;
}

StatusOr<FdHolder> Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_.fd(), nullptr, nullptr);
    if (fd >= 0) return FdHolder(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL arrive after Shutdown() — a clean stop, not a failure.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Cancelled("listener shut down");
    }
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  if (fd_.valid()) {
    ::shutdown(fd_.fd(), SHUT_RDWR);
  }
}

StatusOr<FdHolder> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  FdHolder holder(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect(" + path + ")");
  }
  return holder;
}

StatusOr<FdHolder> ConnectTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  FdHolder holder(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return holder;
}

Status LineChannel::ReadLine(std::string* line, bool* eof) {
  *eof = false;
  line->clear();
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::Ok();
    }
    if (buffer_.size() > max_line_) {
      return Status::InvalidArgument("line exceeds max length " +
                                     std::to_string(max_line_));
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      if (buffer_.empty()) {
        *eof = true;
        return Status::Ok();
      }
      return Status::Internal("connection closed mid-line");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status LineChannel::WriteLine(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_.fd(), framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::Ok();
}

}  // namespace falcon
