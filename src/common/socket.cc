#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/fault_injector.h"

namespace falcon {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FdHolder& FdHolder::operator=(FdHolder&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.release();
  }
  return *this;
}

void FdHolder::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (!unix_path_.empty() && fd_.valid()) {
    ::unlink(unix_path_.c_str());
  }
}

StatusOr<Listener> Listener::ListenUnix(const std::string& path,
                                        int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  Listener l;
  l.fd_ = FdHolder(fd);
  ::unlink(path.c_str());  // Remove a stale socket from a previous run.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind(" + path + ")");
  }
  l.unix_path_ = path;
  if (::listen(fd, backlog) != 0) return Errno("listen(" + path + ")");
  return l;
}

StatusOr<Listener> Listener::ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  Listener l;
  l.fd_ = FdHolder(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  l.bound_port_ = ntohs(addr.sin_port);
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return l;
}

StatusOr<FdHolder> Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_.fd(), nullptr, nullptr);
    if (fd >= 0) return FdHolder(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    // EBADF/EINVAL arrive after Shutdown() — a clean stop, not a failure.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Cancelled("listener shut down");
    }
    // Descriptor exhaustion is a load condition, not a reason to stop
    // accepting forever: report it retryable so the accept loop backs off.
    if (errno == EMFILE || errno == ENFILE) {
      return Status::Unavailable(std::string("accept: ") +
                                 std::strerror(errno));
    }
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  if (fd_.valid()) {
    ::shutdown(fd_.fd(), SHUT_RDWR);
  }
}

StatusOr<FdHolder> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  FdHolder holder(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect(" + path + ")");
  }
  return holder;
}

StatusOr<FdHolder> ConnectTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  FdHolder holder(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return holder;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

Status SetSendTimeout(int fd, int64_t ms) {
  if (ms <= 0) return Status::Ok();
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::Ok();
}

Status LineChannel::ReadLine(std::string* line, bool* eof) {
  *eof = false;
  line->clear();
  // The deadline clock: for clients it runs from call entry (a response is
  // due); for servers it starts only once partial data for the current
  // line exists, so idle connections are not evicted but a peer that
  // started a line must finish it in time.
  int64_t deadline_at = 0;
  if (read_deadline_ms_ > 0 &&
      (!deadline_from_first_byte_ || !buffer_.empty())) {
    deadline_at = NowMs() + read_deadline_ms_;
  }
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::Ok();
    }
    if (buffer_.size() > max_line_) {
      return Status::InvalidArgument("line exceeds max length " +
                                     std::to_string(max_line_));
    }
    if (deadline_at != 0) {
      if (!fault_prefix_.empty()) {
        // Injected stall: behaves exactly like the poll timing out — the
        // peer went quiet mid-line and the deadline fires.
        Status stall = FaultInjector::Global().Hit(fault_prefix_ + "stall");
        if (!stall.ok()) {
          return Status::DeadlineExceeded(
              "read deadline exceeded (injected stall): " + stall.message());
        }
      }
      int64_t remaining = deadline_at - NowMs();
      if (remaining <= 0) {
        return Status::DeadlineExceeded(
            "read deadline of " + std::to_string(read_deadline_ms_) +
            " ms exceeded mid-line");
      }
      pollfd pfd{fd_.fd(), POLLIN, 0};
      int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (ready == 0) continue;  // Timed out; the expiry check above fires.
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (!fault_prefix_.empty()) {
        // Torn line read: the bytes were consumed from the socket but the
        // connection dies before the line completes.
        Status fault = FaultInjector::Global().Hit(fault_prefix_ + "read");
        if (!fault.ok()) return fault;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
      if (deadline_at == 0 && read_deadline_ms_ > 0) {
        // Server mode: the first byte of the line starts the clock.
        deadline_at = NowMs() + read_deadline_ms_;
      }
      continue;
    }
    if (n == 0) {
      if (buffer_.empty()) {
        *eof = true;
        return Status::Ok();
      }
      return Status::Internal("connection closed mid-line");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expiry (when set on the fd by the caller).
      return Status::DeadlineExceeded("recv timed out");
    }
    return Errno("recv");
  }
}

Status LineChannel::WriteLine(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  size_t sent = 0;
  if (!fault_prefix_.empty()) {
    Status fault = FaultInjector::Global().Hit(fault_prefix_ + "write");
    if (!fault.ok()) {
      // Partial write then failure: the peer sees a torn line and must
      // treat the request/response as lost (retry with the same seq).
      size_t half = framed.size() / 2;
      if (half > 0) {
        ssize_t ignored =
            ::send(fd_.fd(), framed.data(), half, MSG_NOSIGNAL);
        (void)ignored;
      }
      return fault;
    }
  }
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_.fd(), framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expiry: the peer stopped draining its socket.
      return Status::DeadlineExceeded("send timed out");
    }
    return Errno("send");
  }
  return Status::Ok();
}

}  // namespace falcon
