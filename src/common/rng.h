// Deterministic, seedable random number generation. All stochastic behaviour
// in FALCON (data generation, error injection, simulated user mistakes, Ducc
// walks) flows through Rng so experiments are reproducible bit-for-bit.
#ifndef FALCON_COMMON_RNG_H_
#define FALCON_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace falcon {

/// Thin deterministic wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): smaller indexes are more likely.
  /// Used by data generators to produce realistic value-frequency skew.
  uint64_t NextSkewed(uint64_t n, double skew = 1.0) {
    if (n <= 1) return 0;
    // Inverse-CDF approximation of a Zipf distribution.
    double u = NextDouble();
    double x = (skew == 1.0)
                   ? std::pow(static_cast<double>(n), u)
                   : std::pow((std::pow(static_cast<double>(n), 1.0 - skew) -
                               1.0) * u + 1.0,
                              1.0 / (1.0 - skew));
    uint64_t idx = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
    return idx >= n ? n - 1 : idx;
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void Shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      size_t j = NextUint(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Picks a uniformly random element index weighted by `weights`.
  template <typename Weights>
  size_t NextWeighted(const Weights& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double u = NextDouble() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u < acc) return i;
    }
    return weights.size() - 1;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_RNG_H_
