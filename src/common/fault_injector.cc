#include "common/fault_injector.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/str_util.h"

namespace falcon {
namespace {

Status ParseOneSpec(std::string_view text, FaultSpec* out) {
  std::vector<std::string> parts = Split(Trim(text), ':');
  if (parts.empty() || Trim(parts[0]).empty()) {
    return Status::InvalidArgument("fault spec missing site name: '" +
                                   std::string(text) + "'");
  }
  FaultSpec spec;
  spec.site = std::string(Trim(parts[0]));
  if (parts.size() >= 2) {
    int64_t nth = ParseInt64(Trim(parts[1]));
    if (nth < 1) {
      return Status::InvalidArgument("fault spec needs nth >= 1: '" +
                                     std::string(text) + "'");
    }
    spec.nth = static_cast<size_t>(nth);
  }
  if (parts.size() >= 3) {
    int64_t count = ParseInt64(Trim(parts[2]));
    if (count < 1) {
      return Status::InvalidArgument("fault spec needs count >= 1: '" +
                                     std::string(text) + "'");
    }
    spec.count = static_cast<size_t>(count);
  }
  if (parts.size() >= 4) {
    std::string kind = ToLower(Trim(parts[3]));
    if (kind == "crash" || kind == "io") {
      spec.code = StatusCode::kIoError;
    } else if (kind == "transient" || kind == "unavailable") {
      spec.code = StatusCode::kUnavailable;
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind +
                                     "' (want crash|transient)");
    }
  }
  if (parts.size() >= 5) {
    return Status::InvalidArgument("trailing fields in fault spec: '" +
                                   std::string(text) + "'");
  }
  *out = std::move(spec);
  return Status::Ok();
}

}  // namespace

void FaultInjector::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  arm_rngs_.emplace_back(spec.seed);
  arms_.push_back(std::move(spec));
  UpdateActive();
}

Status FaultInjector::ArmFromFlag(std::string_view flag) {
  std::vector<FaultSpec> specs;
  for (const std::string& piece : Split(flag, ',')) {
    if (Trim(piece).empty()) continue;
    FaultSpec spec;
    FALCON_RETURN_IF_ERROR(ParseOneSpec(piece, &spec));
    specs.push_back(std::move(spec));
  }
  for (FaultSpec& spec : specs) Arm(std::move(spec));
  return Status::Ok();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  arms_.clear();
  arm_rngs_.clear();
  counts_.clear();
  UpdateActive();
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
}

void FaultInjector::set_recording(bool recording) {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = recording;
  UpdateActive();
}

Status FaultInjector::Hit(std::string_view site) {
  if (!active()) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  size_t hit = ++counts_[std::string(site)];
  for (size_t i = 0; i < arms_.size(); ++i) {
    const FaultSpec& arm = arms_[i];
    if (arm.site != site) continue;
    bool fire;
    if (arm.probability > 0.0) {
      fire = arm_rngs_[i].NextBool(arm.probability);
    } else {
      fire = hit >= arm.nth && hit < arm.nth + arm.count;
    }
    if (fire) {
      return Status(arm.code, "injected fault at " + arm.site + " hit " +
                                  std::to_string(hit));
    }
  }
  return Status::Ok();
}

size_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, size_t>> FaultInjector::Counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, size_t>> out(counts_.begin(),
                                                  counts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void FaultInjector::UpdateActive() {
  active_.store(recording_ || !arms_.empty(), std::memory_order_relaxed);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("FALCON_FAULTS")) {
      Status st = inj->ArmFromFlag(env);
      if (!st.ok()) {
        FALCON_LOG(Warning) << "ignoring FALCON_FAULTS: " << st.ToString();
      }
    }
    return inj;
  }();
  return *injector;
}

}  // namespace falcon
