// CompressedRowSet: a Roaring-style compressed bitmap over table row ids.
//
// The universe is split into 64Ki-row chunks keyed by the high 16 bits of
// the row id; each non-empty chunk is one *container* holding the low 16
// bits in whichever encoding is smallest:
//
//   - array container:  sorted uint16_t values (≤ 4096 entries, 2 B/row)
//   - bitmap container: packed 8 KB bitmap (> 4096 entries)
//   - run container:    sorted (start, length-1) pairs (4 B/run) for
//                       interval-shaped sets (complements, SetAll, FD
//                       blocks); built by RunOptimize / FromDense
//
// Containers promote and demote automatically at the standard Roaring
// cardinality threshold (kArrayMaxCard = 4096): an array insert that would
// exceed it converts to a bitmap, a bitmap removal that reaches it converts
// back, and every binary kernel normalizes its result the same way. Run
// containers are read-optimized — a point mutation converts them to the
// array/bitmap encoding first.
//
// The kernel surface mirrors dense RowSet (And/AndNot/Or/AndCount/
// IsSubsetOf/DisjointWith/Complement/ForEach/First/Set/Clear/Test) plus
// mixed-representation kernels against dense RowSet operands, word-block
// export for the parallel scan shards, and a canonical Hash() that equals
// RowSet::Hash() on equal bits — closed-set grouping and the determinism
// gates never observe the container choice.
//
// Kernels are written for the vectorizer: bitmap∩bitmap runs 4-way-unrolled
// std::popcount word loops, array∩array intersections gallop (binary-search
// skip) when the sides are lopsided, and AndCount never materializes the
// intersection.
#ifndef FALCON_COMMON_COMPRESSED_ROW_SET_H_
#define FALCON_COMMON_COMPRESSED_ROW_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/row_set.h"

namespace falcon {

class CompressedRowSet {
 public:
  /// Standard Roaring array/bitmap switchover cardinality.
  static constexpr uint32_t kArrayMaxCard = 4096;
  /// Rows per container (one 16-bit low-half universe).
  static constexpr size_t kChunkRows = 1 << 16;
  /// 64-bit words per decoded container.
  static constexpr size_t kWordsPerChunk = kChunkRows / 64;

  /// Per-representation container tallies (posting-index stats).
  struct ContainerStats {
    size_t arrays = 0;
    size_t bitmaps = 0;
    size_t runs = 0;
  };

  CompressedRowSet() = default;

  /// Empty set over `universe_size` rows.
  explicit CompressedRowSet(size_t universe_size)
      : universe_size_(universe_size) {}

  /// Set over `universe_size` rows with every bit set to `fill` (a full set
  /// costs one run container per chunk).
  CompressedRowSet(size_t universe_size, bool fill)
      : universe_size_(universe_size) {
    if (fill) SetAll();
  }

  /// Compresses a dense bitmap, choosing the best container per chunk
  /// (including runs).
  static CompressedRowSet FromDense(const RowSet& dense);

  /// Decompresses into a dense bitmap.
  RowSet ToDense() const;

  size_t universe_size() const { return universe_size_; }
  /// Logical 64-bit word count (the dense representation's num_words()).
  size_t num_words() const { return (universe_size_ + 63) / 64; }

  /// Grows the universe (streaming append); new rows start cleared.
  /// Containers are sparse and never hold rows ≥ universe_size(), so only
  /// the logical bound moves — ChunkWords/Complement/Hash derive the tail
  /// extent from universe_size_ on demand. Shrinking is not supported.
  void Resize(size_t new_universe) {
    FALCON_DCHECK(new_universe >= universe_size_);
    if (new_universe > universe_size_) universe_size_ = new_universe;
  }

  void Set(size_t row);
  void Clear(size_t row);
  bool Test(size_t row) const;

  void SetAll();
  void ClearAll() { containers_.clear(); }

  size_t Count() const {
    size_t n = 0;
    for (const Container& c : containers_) n += c.card;
    return n;
  }
  bool Empty() const { return containers_.empty(); }

  // --- Compressed ∘ compressed kernels -------------------------------------

  void And(const CompressedRowSet& other);
  void AndNot(const CompressedRowSet& other);
  void Or(const CompressedRowSet& other);
  /// Fused |this ∩ other| — never materializes the intersection.
  size_t AndCount(const CompressedRowSet& other) const;
  bool IsSubsetOf(const CompressedRowSet& other) const;
  bool DisjointWith(const CompressedRowSet& other) const;

  // --- Mixed kernels against a dense operand -------------------------------

  void And(const RowSet& dense);
  void AndNot(const RowSet& dense);
  void Or(const RowSet& dense);
  size_t AndCount(const RowSet& dense) const;
  bool IsSubsetOf(const RowSet& dense) const;
  /// True iff `dense` ⊆ this (the reversed subset direction).
  bool ContainsAll(const RowSet& dense) const;
  bool DisjointWith(const RowSet& dense) const;
  /// dense &= this (dense-side in-place AND; used when a dense node set is
  /// restricted by a compressed predicate bitmap).
  void AndInto(RowSet& dense) const;

  /// Complement within the universe. Run-optimized: the complement of a
  /// sparse set is interval-shaped and costs a few runs per chunk.
  CompressedRowSet Complement() const;

  /// Calls `fn(row)` for every set row in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Container& c : containers_) {
      size_t base = static_cast<size_t>(c.key) << 16;
      switch (c.type) {
        case Type::kArray:
          for (uint16_t v : c.vals) fn(base + v);
          break;
        case Type::kRun:
          for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
            size_t start = base + c.vals[i];
            size_t end = start + c.vals[i + 1];
            for (size_t r = start; r <= end; ++r) fn(r);
          }
          break;
        case Type::kBitmap:
          for (size_t w = 0; w < kWordsPerChunk; ++w) {
            uint64_t word = c.bits[w];
            while (word) {
              int bit = std::countr_zero(word);
              fn(base + w * 64 + static_cast<size_t>(bit));
              word &= word - 1;
            }
          }
          break;
      }
    }
  }

  /// True iff `fn(row)` holds for every set row; stops at the first failure.
  template <typename Fn>
  bool AllOf(Fn&& fn) const {
    bool ok = true;
    // ForEach has no early exit; cheap enough since AllOf callers bail on
    // the flag inside fn anyway.
    ForEach([&](size_t r) {
      if (ok && !fn(r)) ok = false;
    });
    return ok;
  }

  /// First set row, or universe_size() if empty.
  size_t First() const;

  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> rows;
    rows.reserve(Count());
    ForEach([&](size_t r) { rows.push_back(static_cast<uint32_t>(r)); });
    return rows;
  }

  /// Representation-independent equality (a run container equals the array
  /// holding the same rows).
  bool operator==(const CompressedRowSet& other) const;
  /// Canonical equality against a dense bitmap.
  bool operator==(const RowSet& dense) const;

  /// Canonical FNV-1a hash over the logical 64-bit word stream — equal to
  /// RowSet::Hash() of the same bits, independent of container choice.
  /// Zero-word gaps between containers are folded in O(log gap) via
  /// multiplier exponentiation.
  uint64_t Hash() const;

  /// Word-block export for the parallel scan shards: writes the logical
  /// words [word_begin, word_begin + word_count) into `out`. Shards that
  /// own disjoint word ranges decode disjoint slices, so a parallel export
  /// is bit-identical to ToDense().
  void CopyWords(size_t word_begin, size_t word_count, uint64_t* out) const;

  /// Converts containers to run encoding where runs are the smallest of the
  /// three encodings (the standard Roaring space rule). Call after bulk
  /// construction; point mutations undo it per container.
  void RunOptimize();

  /// Exact resident heap bytes (capacity-based — what the posting budget
  /// accounts).
  size_t HeapBytes() const;

  ContainerStats container_stats() const {
    ContainerStats s;
    for (const Container& c : containers_) {
      if (c.type == Type::kArray) ++s.arrays;
      else if (c.type == Type::kBitmap) ++s.bitmaps;
      else ++s.runs;
    }
    return s;
  }

 private:
  enum class Type : uint8_t { kArray, kBitmap, kRun };

  // vals holds sorted low-16 values (kArray) or interleaved
  // (start, length-1) pairs sorted by start (kRun); bits holds the packed
  // kWordsPerChunk-word bitmap (kBitmap). card is maintained exactly.
  struct Container {
    uint16_t key = 0;
    Type type = Type::kArray;
    uint32_t card = 0;
    std::vector<uint16_t> vals;
    std::vector<uint64_t> bits;
  };

  /// Index of the container with `key`, or containers_.size() if absent.
  size_t FindContainer(uint16_t key) const;
  /// Container for `key`, inserted (empty array) if absent.
  Container& GetOrCreate(uint16_t key);
  /// Number of logical words chunk `key` spans (short for the last chunk).
  size_t ChunkWords(uint16_t key) const;

  static void Decode(const Container& c, uint64_t* words);
  /// Decode into `buf`, allocating it (kWordsPerChunk words) only on first
  /// use — keeps the 8KB scratch off paths that never meet a run container.
  static const uint64_t* DecodeLazy(const Container& c,
                                    std::vector<uint64_t>& buf);
  static Container BuildFromWords(uint16_t key, const uint64_t* words,
                                  size_t nwords, bool try_runs);
  static void ToBitmap(Container& c);
  static void ToArray(Container& c);
  /// Re-encodes a run container as array/bitmap by cardinality (point
  /// mutations need a mutable encoding).
  static void UnRun(Container& c);
  /// Demotes a bitmap whose card dropped to the array threshold.
  static void NormalizeAfterRemoval(Container& c);

  size_t universe_size_ = 0;
  std::vector<Container> containers_;  // Sorted by key; no empty containers.
};

}  // namespace falcon

#endif  // FALCON_COMMON_COMPRESSED_ROW_SET_H_
