#include "common/logging.h"

namespace falcon {
namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal_logging
}  // namespace falcon
