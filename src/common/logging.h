// Minimal leveled logging for the library and harnesses. Defaults to WARNING
// so benchmark output stays clean; examples raise it to INFO.
#ifndef FALCON_COMMON_LOGGING_H_
#define FALCON_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace falcon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink for disabled log statements; swallows the stream.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace falcon

// Usage: FALCON_LOG(Info) << "x=" << x;  Filtering happens at flush time in
// the LogMessage destructor, so disabled levels cost only formatting.
#define FALCON_LOG(level)                                             \
  ::falcon::internal_logging::LogMessage(                             \
      ::falcon::LogLevel::k##level, __FILE__, __LINE__)               \
      .stream()

/// Fatal invariant check, active in all build types.
#define FALCON_CHECK(cond)                                             \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::cerr << "FALCON_CHECK failed at " << __FILE__ << ":"        \
                << __LINE__ << ": " #cond << std::endl;                \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

/// Debug-build-only invariant check; compiles to nothing under NDEBUG so it
/// can guard hot loops (e.g. bitmap universe-size agreement).
#ifdef NDEBUG
#define FALCON_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define FALCON_DCHECK(cond) FALCON_CHECK(cond)
#endif

#endif  // FALCON_COMMON_LOGGING_H_
