// AVX2 kernel tier. Compiled with -mavx2 -msse4.2 (see
// src/common/CMakeLists.txt); nothing here may be called unless
// DetectLevel() >= kAVX2 — the dispatch layer guarantees that.
//
// Word loops use the PSHUFB nibble-lookup popcount (Mula's method): a
// 16-entry table gives per-nibble counts, PSADBW folds the byte counts
// into four 64-bit lanes, and a vector accumulator defers the horizontal
// reduction to the end of the loop. Array∩array uses the SSE4.2
// PCMPESTRM any-equal kernel over 8-element windows with a shuffle-mask
// table to compact matches, falling back to galloping for heavily skewed
// inputs (crossover kGallopRatioSimd, measured — see DESIGN.md).
#include "common/simd.h"

// __AVX2__ is defined iff this TU actually got its -mavx2 flag (CMake only
// adds it when the compiler supports it), so an incapable toolchain
// automatically falls back to the nullptr stub below.
#if defined(__AVX2__) && defined(__SSE4_2__)

#include <immintrin.h>

#include <utility>

namespace falcon {
namespace simd {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Popcount word loops.
// ---------------------------------------------------------------------------

inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline size_t HorizontalSum(__m256i acc) {
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<size_t>(_mm_extract_epi64(sum, 1));
}

size_t Avx2PopcountWords(const uint64_t* w, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 4));
    acc = _mm256_add_epi64(acc, Popcount256(a));
    acc = _mm256_add_epi64(acc, Popcount256(b));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += static_cast<size_t>(_mm_popcnt_u64(w[i]));
  return count;
}

size_t Avx2AndCountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i va0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i va1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va0, vb0)));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va1, vb1)));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    count += static_cast<size_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return count;
}

size_t Avx2And3CountWords(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                          size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i w = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), w);
    acc = _mm256_add_epi64(acc, Popcount256(w));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    dst[i] = w;
    count += static_cast<size_t>(_mm_popcnt_u64(w));
  }
  return count;
}

// Plain loops: this TU is compiled with -mavx2, so the autovectorizer
// already emits 256-bit vpand/vpandn/vpor here; intrinsics would add
// nothing but tail-handling code.
void Avx2AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void Avx2AndNotWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void Avx2OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

// ---------------------------------------------------------------------------
// Sorted-u16 array intersection (SSE4.2 PCMPESTRM kernel).
// ---------------------------------------------------------------------------

// shuffle_masks[m] compacts the u16 lanes whose bits are set in m to the
// front of the vector. Built once at startup; 4KB.
struct ShuffleTable16 {
  alignas(16) uint8_t masks[256][16];
  ShuffleTable16() {
    for (int m = 0; m < 256; ++m) {
      int pos = 0;
      for (int bit = 0; bit < 8; ++bit) {
        if (m & (1 << bit)) {
          masks[m][2 * pos] = static_cast<uint8_t>(2 * bit);
          masks[m][2 * pos + 1] = static_cast<uint8_t>(2 * bit + 1);
          ++pos;
        }
      }
      for (; pos < 8; ++pos) {
        masks[m][2 * pos] = 0xFF;
        masks[m][2 * pos + 1] = 0xFF;
      }
    }
  }
};
const ShuffleTable16 g_shuffle16;

// Galloping fallback shared with the scalar tier in spirit; duplicated
// here so this TU stays self-contained (and gets -mavx2 codegen).
template <bool kMaterialize>
size_t GallopIntersect(const uint16_t* small, size_t ns,
                       const uint16_t* large, size_t nl, uint16_t* out) {
  size_t count = 0;
  size_t lo = 0;
  for (size_t i = 0; i < ns && lo < nl; ++i) {
    uint16_t v = small[i];
    size_t step = 1;
    size_t hi = lo;
    while (hi < nl && large[hi] < v) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > nl) hi = nl;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (large[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < nl && large[lo] == v) {
      if constexpr (kMaterialize) out[count] = v;
      ++count;
      ++lo;
    }
  }
  return count;
}

template <bool kMaterialize>
size_t SseIntersectImpl(const uint16_t* a, size_t na, const uint16_t* b,
                        size_t nb, uint16_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (nb / na >= kGallopRatioSimd) {
    return GallopIntersect<kMaterialize>(a, na, b, nb, out);
  }
  size_t count = 0;
  size_t i = 0, j = 0;
  if (na >= 8 && nb >= 8) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    while (true) {
      // Bit i of the mask: a[i..i+7][i] equals *some* element of the b
      // window. Values are unique within each array, so every match is
      // counted exactly once across window advances.
      __m128i res = _mm_cmpestrm(
          vb, 8, va, 8,
          _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK);
      int mask = _mm_extract_epi32(res, 0);
      if constexpr (kMaterialize) {
        __m128i compacted = _mm_shuffle_epi8(
            va, _mm_load_si128(reinterpret_cast<const __m128i*>(
                    g_shuffle16.masks[mask])));
        // Full-vector store: may run up to 7 elements past the final
        // count, which is why callers reserve kIntersectSlack (simd.h).
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count), compacted);
      }
      count += static_cast<size_t>(_mm_popcnt_u32(mask));
      uint16_t a_max = a[i + 7];
      uint16_t b_max = b[j + 7];
      bool advance_a = a_max <= b_max;
      bool advance_b = b_max <= a_max;
      if (advance_a) {
        i += 8;
        if (i + 8 > na) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (advance_b) {
        j += 8;
        if (j + 8 > nb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  // Scalar merge over the tails. Elements of a[i..] were never part of a
  // processed window, so nothing is double counted.
  while (i < na && j < nb) {
    uint16_t x = a[i], y = b[j];
    if (x == y) {
      if constexpr (kMaterialize) out[count] = x;
      ++count;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

size_t Avx2IntersectU16(const uint16_t* a, size_t na, const uint16_t* b,
                        size_t nb, uint16_t* out) {
  return SseIntersectImpl<true>(a, na, b, nb, out);
}

size_t Avx2IntersectU16Count(const uint16_t* a, size_t na, const uint16_t* b,
                             size_t nb) {
  return SseIntersectImpl<false>(a, na, b, nb, nullptr);
}

// ---------------------------------------------------------------------------
// Array∩bitmap membership count.
// ---------------------------------------------------------------------------

size_t Avx2ArrayBitmapCount(const uint16_t* vals, size_t n,
                            const uint64_t* bits) {
  // Gather four words per step and test the selected bits in vector
  // registers. The bitmap side stays resident (8KB), so gathers hit L1.
  const __m256i one = _mm256_set1_epi64x(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i v16 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(vals + i));
    __m128i v32 = _mm_cvtepu16_epi32(v16);
    __m128i word_idx = _mm_srli_epi32(v32, 6);
    __m256i words = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(bits), word_idx, 8);
    __m256i shifts = _mm256_and_si256(_mm256_cvtepu32_epi64(v32),
                                      _mm256_set1_epi64x(63));
    acc = _mm256_add_epi64(
        acc, _mm256_and_si256(_mm256_srlv_epi64(words, shifts), one));
  }
  size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    uint16_t v = vals[i];
    count += (bits[v >> 6] >> (v & 63)) & 1;
  }
  return count;
}

constexpr Kernels kAvx2Kernels = {
    Avx2PopcountWords,    Avx2AndCountWords,  Avx2AndWords,
    Avx2AndNotWords,      Avx2OrWords,        Avx2IntersectU16,
    Avx2IntersectU16Count, Avx2ArrayBitmapCount, Avx2And3CountWords,
};

}  // namespace

const Kernels* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace internal
}  // namespace simd
}  // namespace falcon

#else  // toolchain cannot target AVX2

namespace falcon {
namespace simd {
namespace internal {

const Kernels* Avx2Kernels() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace falcon

#endif
