#include "common/compressed_row_set.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"

namespace falcon {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// h * kFnvPrime^n (mod 2^64) — folds a run of n zero words into the FNV
// stream in O(log n).
uint64_t MulPrimePow(uint64_t h, size_t n) {
  uint64_t base = kFnvPrime;
  while (n != 0) {
    if (n & 1) h *= base;
    base *= base;
    n >>= 1;
  }
  return h;
}

// Popcount / fused |a ∩ b| over word ranges — routed through the
// runtime-dispatched SIMD tier (AVX-512 VPOPCNTDQ / AVX2 PSHUFB popcount /
// scalar fallback). These two kernels dominate the lattice counting path.
size_t PopcountWords(const uint64_t* w, size_t n) {
  return simd::PopcountWords(w, n);
}

size_t AndCountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  return simd::AndCountWords(a, b, n);
}

// Number of runs of consecutive set bits across a word range.
size_t RunsOfWords(const uint64_t* w, size_t n) {
  size_t runs = 0;
  uint64_t carry = 0;  // Bit 63 of the previous word.
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = w[i];
    // A run starts at every set bit whose predecessor is clear.
    runs += static_cast<size_t>(std::popcount(x & ~((x << 1) | carry)));
    carry = x >> 63;
  }
  return runs;
}

// Encoded byte sizes (the standard Roaring space rule).
size_t ArrayBytes(size_t card) { return 2 * card; }
size_t RunBytes(size_t runs) { return 4 * runs; }
constexpr size_t kBitmapBytes = 8192;

}  // namespace

// ---------------------------------------------------------------------------
// Container primitives
// ---------------------------------------------------------------------------

size_t CompressedRowSet::FindContainer(uint16_t key) const {
  size_t lo = 0, hi = containers_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (containers_[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return (lo < containers_.size() && containers_[lo].key == key)
             ? lo
             : containers_.size();
}

CompressedRowSet::Container& CompressedRowSet::GetOrCreate(uint16_t key) {
  size_t lo = 0, hi = containers_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (containers_[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < containers_.size() && containers_[lo].key == key) {
    return containers_[lo];
  }
  Container c;
  c.key = key;
  return *containers_.insert(containers_.begin() + static_cast<ptrdiff_t>(lo),
                             std::move(c));
}

size_t CompressedRowSet::ChunkWords(uint16_t key) const {
  size_t base = static_cast<size_t>(key) * kWordsPerChunk;
  size_t total = num_words();
  FALCON_DCHECK(base < total);
  return std::min(kWordsPerChunk, total - base);
}

void CompressedRowSet::Decode(const Container& c, uint64_t* words) {
  std::memset(words, 0, kWordsPerChunk * sizeof(uint64_t));
  switch (c.type) {
    case Type::kArray:
      for (uint16_t v : c.vals) words[v >> 6] |= uint64_t{1} << (v & 63);
      break;
    case Type::kBitmap:
      std::memcpy(words, c.bits.data(), kWordsPerChunk * sizeof(uint64_t));
      break;
    case Type::kRun:
      for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
        uint32_t start = c.vals[i];
        uint32_t end = start + c.vals[i + 1];  // Inclusive.
        size_t w0 = start >> 6, w1 = end >> 6;
        uint64_t first = ~uint64_t{0} << (start & 63);
        uint64_t last = ~uint64_t{0} >> (63 - (end & 63));
        if (w0 == w1) {
          words[w0] |= first & last;
        } else {
          words[w0] |= first;
          for (size_t w = w0 + 1; w < w1; ++w) words[w] = ~uint64_t{0};
          words[w1] |= last;
        }
      }
      break;
  }
}

CompressedRowSet::Container CompressedRowSet::BuildFromWords(
    uint16_t key, const uint64_t* words, size_t nwords, bool try_runs) {
  Container c;
  c.key = key;
  c.card = static_cast<uint32_t>(PopcountWords(words, nwords));
  if (c.card == 0) return c;
  size_t runs = try_runs ? RunsOfWords(words, nwords) : SIZE_MAX;
  size_t best_plain = std::min(ArrayBytes(c.card), kBitmapBytes);
  if (try_runs && RunBytes(runs) < best_plain) {
    c.type = Type::kRun;
    c.vals.reserve(2 * runs);
    // Walk set-bit intervals word by word.
    uint32_t run_start = 0;
    bool in_run = false;
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t x = words[w];
      uint32_t bit_base = static_cast<uint32_t>(w * 64);
      if (in_run && x != ~uint64_t{0}) {
        // Run may end inside this word; handled by the scan below.
      }
      while (x != 0 || in_run) {
        if (!in_run) {
          int b = std::countr_zero(x);
          run_start = bit_base + static_cast<uint32_t>(b);
          in_run = true;
          // Clear the run's bits within this word to find its end.
          x |= (b == 0) ? 0 : ((uint64_t{1} << b) - 1);  // Fill below start.
          x = ~x;                                        // Now zeros are set bits.
          if (x == 0) break;                             // Run spans past word.
          int e = std::countr_zero(x);
          c.vals.push_back(static_cast<uint16_t>(run_start & 0xFFFF));
          c.vals.push_back(static_cast<uint16_t>(bit_base + e - 1 - run_start));
          in_run = false;
          x = words[w] & (~uint64_t{0} << e);  // Remaining bits of the word.
        } else {
          // Run continues from a previous word: find the first clear bit.
          uint64_t inv = ~x;
          if (inv == 0) break;  // Whole word set; run continues.
          int e = std::countr_zero(inv);
          c.vals.push_back(static_cast<uint16_t>(run_start & 0xFFFF));
          c.vals.push_back(static_cast<uint16_t>(bit_base + e - 1 - run_start));
          in_run = false;
          x &= ~uint64_t{0} << e;
        }
      }
    }
    if (in_run) {
      uint32_t last = static_cast<uint32_t>(nwords * 64 - 1);
      // Trim to the highest set bit (the tail word may be partial).
      uint64_t tail = words[nwords - 1];
      last = static_cast<uint32_t>((nwords - 1) * 64 + 63 -
                                   std::countl_zero(tail));
      c.vals.push_back(static_cast<uint16_t>(run_start & 0xFFFF));
      c.vals.push_back(static_cast<uint16_t>(last - run_start));
    }
    return c;
  }
  if (c.card <= kArrayMaxCard) {
    c.type = Type::kArray;
    c.vals.reserve(c.card);
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t x = words[w];
      while (x) {
        int b = std::countr_zero(x);
        c.vals.push_back(static_cast<uint16_t>(w * 64 + static_cast<size_t>(b)));
        x &= x - 1;
      }
    }
  } else {
    c.type = Type::kBitmap;
    c.bits.assign(kWordsPerChunk, 0);
    std::memcpy(c.bits.data(), words, nwords * sizeof(uint64_t));
  }
  return c;
}

void CompressedRowSet::ToBitmap(Container& c) {
  if (c.type == Type::kBitmap) return;
  std::vector<uint64_t> words(kWordsPerChunk, 0);
  Decode(c, words.data());
  c.bits = std::move(words);
  c.vals.clear();
  c.vals.shrink_to_fit();
  c.type = Type::kBitmap;
}

void CompressedRowSet::ToArray(Container& c) {
  if (c.type == Type::kArray) return;
  FALCON_DCHECK(c.card <= kArrayMaxCard);
  std::vector<uint16_t> vals;
  vals.reserve(c.card);
  if (c.type == Type::kBitmap) {
    for (size_t w = 0; w < kWordsPerChunk; ++w) {
      uint64_t x = c.bits[w];
      while (x) {
        int b = std::countr_zero(x);
        vals.push_back(static_cast<uint16_t>(w * 64 + static_cast<size_t>(b)));
        x &= x - 1;
      }
    }
  } else {  // kRun
    for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
      uint32_t start = c.vals[i];
      uint32_t end = start + c.vals[i + 1];
      for (uint32_t v = start; v <= end; ++v) {
        vals.push_back(static_cast<uint16_t>(v));
      }
    }
  }
  c.vals = std::move(vals);
  c.bits.clear();
  c.bits.shrink_to_fit();
  c.type = Type::kArray;
}

void CompressedRowSet::UnRun(Container& c) {
  if (c.type != Type::kRun) return;
  if (c.card > kArrayMaxCard) {
    ToBitmap(c);
  } else {
    ToArray(c);
  }
}

void CompressedRowSet::NormalizeAfterRemoval(Container& c) {
  if (c.type == Type::kBitmap && c.card <= kArrayMaxCard) ToArray(c);
}

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

void CompressedRowSet::Set(size_t row) {
  FALCON_DCHECK(row < universe_size_);
  uint16_t key = static_cast<uint16_t>(row >> 16);
  uint16_t low = static_cast<uint16_t>(row & 0xFFFF);
  Container& c = GetOrCreate(key);
  UnRun(c);
  if (c.type == Type::kBitmap) {
    uint64_t& w = c.bits[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if (!(w & mask)) {
      w |= mask;
      ++c.card;
    }
    return;
  }
  auto it = std::lower_bound(c.vals.begin(), c.vals.end(), low);
  if (it != c.vals.end() && *it == low) return;
  if (c.card == kArrayMaxCard) {  // Promotion: the insert would overflow.
    ToBitmap(c);
    c.bits[low >> 6] |= uint64_t{1} << (low & 63);
    ++c.card;
    return;
  }
  c.vals.insert(it, low);
  ++c.card;
}

void CompressedRowSet::Clear(size_t row) {
  FALCON_DCHECK(row < universe_size_);
  uint16_t key = static_cast<uint16_t>(row >> 16);
  uint16_t low = static_cast<uint16_t>(row & 0xFFFF);
  size_t idx = FindContainer(key);
  if (idx == containers_.size()) return;
  Container& c = containers_[idx];
  if (c.type == Type::kRun) {
    // Cheap miss test before paying the re-encode.
    bool present = false;
    for (size_t i = 0; i + 1 < c.vals.size() && c.vals[i] <= low; i += 2) {
      if (low <= static_cast<uint32_t>(c.vals[i]) + c.vals[i + 1]) {
        present = true;
        break;
      }
    }
    if (!present) return;
    UnRun(c);
  }
  if (c.type == Type::kBitmap) {
    uint64_t& w = c.bits[low >> 6];
    uint64_t mask = uint64_t{1} << (low & 63);
    if (!(w & mask)) return;
    w &= ~mask;
    --c.card;
    NormalizeAfterRemoval(c);
  } else {
    auto it = std::lower_bound(c.vals.begin(), c.vals.end(), low);
    if (it == c.vals.end() || *it != low) return;
    c.vals.erase(it);
    --c.card;
  }
  if (c.card == 0) {
    containers_.erase(containers_.begin() + static_cast<ptrdiff_t>(idx));
  }
}

bool CompressedRowSet::Test(size_t row) const {
  FALCON_DCHECK(row < universe_size_);
  uint16_t key = static_cast<uint16_t>(row >> 16);
  uint16_t low = static_cast<uint16_t>(row & 0xFFFF);
  size_t idx = FindContainer(key);
  if (idx == containers_.size()) return false;
  const Container& c = containers_[idx];
  switch (c.type) {
    case Type::kBitmap:
      return (c.bits[low >> 6] >> (low & 63)) & 1;
    case Type::kArray:
      return std::binary_search(c.vals.begin(), c.vals.end(), low);
    case Type::kRun:
      for (size_t i = 0; i + 1 < c.vals.size() && c.vals[i] <= low; i += 2) {
        if (low <= static_cast<uint32_t>(c.vals[i]) + c.vals[i + 1]) {
          return true;
        }
      }
      return false;
  }
  return false;
}

void CompressedRowSet::SetAll() {
  containers_.clear();
  if (universe_size_ == 0) return;
  size_t nchunks = (universe_size_ + kChunkRows - 1) / kChunkRows;
  containers_.reserve(nchunks);
  for (size_t k = 0; k < nchunks; ++k) {
    Container c;
    c.key = static_cast<uint16_t>(k);
    c.type = Type::kRun;
    size_t rows =
        std::min(kChunkRows, universe_size_ - k * kChunkRows);
    c.card = static_cast<uint32_t>(rows);
    c.vals = {0, static_cast<uint16_t>(rows - 1)};
    containers_.push_back(std::move(c));
  }
}

size_t CompressedRowSet::First() const {
  if (containers_.empty()) return universe_size_;
  const Container& c = containers_.front();
  size_t base = static_cast<size_t>(c.key) << 16;
  switch (c.type) {
    case Type::kArray:
    case Type::kRun:
      return base + c.vals.front();
    case Type::kBitmap:
      for (size_t w = 0; w < kWordsPerChunk; ++w) {
        if (c.bits[w]) {
          return base + w * 64 +
                 static_cast<size_t>(std::countr_zero(c.bits[w]));
        }
      }
      break;
  }
  return universe_size_;
}

// ---------------------------------------------------------------------------
// Dense conversions
// ---------------------------------------------------------------------------

CompressedRowSet CompressedRowSet::FromDense(const RowSet& dense) {
  CompressedRowSet out(dense.universe_size());
  size_t total_words = dense.universe_size() == 0 ? 0 : out.num_words();
  std::vector<uint64_t> buf(kWordsPerChunk);
  for (size_t base = 0; base < total_words; base += kWordsPerChunk) {
    size_t nwords = std::min(kWordsPerChunk, total_words - base);
    bool any = false;
    for (size_t i = 0; i < nwords; ++i) {
      buf[i] = dense.word(base + i);
      any |= buf[i] != 0;
    }
    if (!any) continue;
    Container c = BuildFromWords(static_cast<uint16_t>(base / kWordsPerChunk),
                                 buf.data(), nwords, /*try_runs=*/true);
    out.containers_.push_back(std::move(c));
  }
  return out;
}

RowSet CompressedRowSet::ToDense() const {
  RowSet out(universe_size_);
  std::vector<uint64_t> buf(kWordsPerChunk);
  for (const Container& c : containers_) {
    Decode(c, buf.data());
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    size_t nwords = ChunkWords(c.key);
    for (size_t i = 0; i < nwords; ++i) out.SetWord(base + i, buf[i]);
  }
  return out;
}

void CompressedRowSet::CopyWords(size_t word_begin, size_t word_count,
                                 uint64_t* out) const {
  FALCON_DCHECK(word_begin + word_count <= num_words());
  std::memset(out, 0, word_count * sizeof(uint64_t));
  if (word_count == 0) return;
  std::vector<uint64_t> buf(kWordsPerChunk);
  size_t word_end = word_begin + word_count;
  for (const Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    if (base >= word_end || base + kWordsPerChunk <= word_begin) continue;
    Decode(c, buf.data());
    size_t lo = std::max(base, word_begin);
    size_t hi = std::min(base + ChunkWords(c.key), word_end);
    for (size_t w = lo; w < hi; ++w) out[w - word_begin] = buf[w - base];
  }
}

void CompressedRowSet::RunOptimize() {
  std::vector<uint64_t> buf(kWordsPerChunk);
  for (Container& c : containers_) {
    if (c.type == Type::kRun) continue;
    Decode(c, buf.data());
    size_t nwords = ChunkWords(c.key);
    size_t runs = RunsOfWords(buf.data(), nwords);
    if (RunBytes(runs) < std::min(ArrayBytes(c.card), kBitmapBytes)) {
      c = BuildFromWords(c.key, buf.data(), nwords, /*try_runs=*/true);
    }
  }
}

size_t CompressedRowSet::HeapBytes() const {
  size_t bytes = containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.vals.capacity() * sizeof(uint16_t) +
             c.bits.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Compressed ∘ compressed kernels
// ---------------------------------------------------------------------------

namespace {

// Sorted-array intersection, routed through the dispatched SIMD tier
// (SSE4.2 PCMPESTRM merge, galloping on lopsided inputs — the crossover
// lives in the kernel layer; see simd.h).
void IntersectArrays(const std::vector<uint16_t>& a,
                     const std::vector<uint16_t>& b,
                     std::vector<uint16_t>* out) {
  out->resize(std::min(a.size(), b.size()) + simd::kIntersectSlack);
  size_t n = simd::IntersectU16(a.data(), a.size(), b.data(), b.size(),
                                out->data());
  out->resize(n);
}

size_t IntersectArraysCount(const std::vector<uint16_t>& a,
                            const std::vector<uint16_t>& b) {
  return simd::IntersectU16Count(a.data(), a.size(), b.data(), b.size());
}

bool BitmapTest(const std::vector<uint64_t>& bits, uint16_t v) {
  return (bits[v >> 6] >> (v & 63)) & 1;
}

// |array ∩ runs|: merge walk over two sorted sequences (values vs run
// intervals) — O(|vals| + |runs|), no chunk decode.
size_t ArrayRunCount(const std::vector<uint16_t>& vals,
                     const std::vector<uint16_t>& runs) {
  size_t n = 0;
  size_t ri = 0;
  for (size_t i = 0; i < vals.size() && ri + 1 < runs.size();) {
    uint32_t v = vals[i];
    uint32_t start = runs[ri];
    uint32_t end = start + runs[ri + 1];  // Inclusive.
    if (v < start) {
      ++i;
    } else if (v > end) {
      ri += 2;
    } else {
      ++n;
      ++i;
    }
  }
  return n;
}

// |runs_a ∩ runs_b|: interval intersection merge — O(|a| + |b|).
size_t RunRunCount(const std::vector<uint16_t>& a,
                   const std::vector<uint16_t>& b) {
  size_t n = 0;
  size_t i = 0, j = 0;
  while (i + 1 < a.size() && j + 1 < b.size()) {
    uint32_t sa = a[i], ea = sa + a[i + 1];
    uint32_t sb = b[j], eb = sb + b[j + 1];
    uint32_t lo = std::max(sa, sb);
    uint32_t hi = std::min(ea, eb);
    if (lo <= hi) n += hi - lo + 1;
    if (ea < eb) {
      i += 2;
    } else if (eb < ea) {
      j += 2;
    } else {
      i += 2;
      j += 2;
    }
  }
  return n;
}

// |runs ∩ bitmap words|: edge-masked popcounts per run, SIMD popcount for
// the interior words — no chunk decode.
size_t RunBitmapCountWords(const std::vector<uint16_t>& runs,
                           const uint64_t* words) {
  size_t n = 0;
  for (size_t i = 0; i + 1 < runs.size(); i += 2) {
    uint32_t start = runs[i];
    uint32_t end = start + runs[i + 1];  // Inclusive.
    size_t w0 = start >> 6, w1 = end >> 6;
    uint64_t first = ~uint64_t{0} << (start & 63);
    uint64_t last = ~uint64_t{0} >> (63 - (end & 63));
    if (w0 == w1) {
      n += static_cast<size_t>(std::popcount(words[w0] & first & last));
    } else {
      n += static_cast<size_t>(std::popcount(words[w0] & first));
      n += simd::PopcountWords(words + w0 + 1, w1 - w0 - 1);
      n += static_cast<size_t>(std::popcount(words[w1] & last));
    }
  }
  return n;
}

}  // namespace

// Decode scratch that only materializes (8KB, zero-filled) when a run
// container actually needs expanding — the common array/bitmap mixes never
// touch it, which matters on sparse hot paths.
const uint64_t* CompressedRowSet::DecodeLazy(const Container& c,
                                             std::vector<uint64_t>& buf) {
  if (buf.empty()) buf.resize(kWordsPerChunk);
  Decode(c, buf.data());
  return buf.data();
}

void CompressedRowSet::And(const CompressedRowSet& other) {
  FALCON_DCHECK(universe_size_ == other.universe_size_);
  std::vector<Container> out;
  out.reserve(std::min(containers_.size(), other.containers_.size()));
  std::vector<uint64_t> buf_a, buf_b;
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    Container& a = containers_[i];
    const Container& b = other.containers_[j];
    if (a.key < b.key) {
      ++i;
    } else if (b.key < a.key) {
      ++j;
    } else {
      Container r;
      r.key = a.key;
      if (a.type == Type::kArray && b.type == Type::kArray) {
        r.type = Type::kArray;
        IntersectArrays(a.vals, b.vals, &r.vals);
        r.card = static_cast<uint32_t>(r.vals.size());
      } else if (a.type == Type::kArray && b.type == Type::kBitmap) {
        r.type = Type::kArray;
        for (uint16_t v : a.vals) {
          if (BitmapTest(b.bits, v)) r.vals.push_back(v);
        }
        r.card = static_cast<uint32_t>(r.vals.size());
      } else if (a.type == Type::kBitmap && b.type == Type::kArray) {
        r.type = Type::kArray;
        for (uint16_t v : b.vals) {
          if (BitmapTest(a.bits, v)) r.vals.push_back(v);
        }
        r.card = static_cast<uint32_t>(r.vals.size());
      } else {
        // A run side (or bitmap×bitmap): go through decoded words.
        const uint64_t* wa =
            a.type == Type::kBitmap ? a.bits.data() : DecodeLazy(a, buf_a);
        const uint64_t* wb =
            b.type == Type::kBitmap ? b.bits.data() : DecodeLazy(b, buf_b);
        size_t nwords = ChunkWords(a.key);
        std::vector<uint64_t> anded(nwords);
        for (size_t w = 0; w < nwords; ++w) anded[w] = wa[w] & wb[w];
        r = BuildFromWords(a.key, anded.data(), nwords, /*try_runs=*/false);
      }
      if (r.card > 0) out.push_back(std::move(r));
      ++i;
      ++j;
    }
  }
  containers_ = std::move(out);
}

size_t CompressedRowSet::AndCount(const CompressedRowSet& other) const {
  FALCON_DCHECK(universe_size_ == other.universe_size_);
  size_t n = 0;
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    const Container& a = containers_[i];
    const Container& b = other.containers_[j];
    if (a.key < b.key) {
      ++i;
    } else if (b.key < a.key) {
      ++j;
    } else {
      // Every type pairing counts directly on the encoded forms — the old
      // decode-to-8KB-scratch path (and its two zero-filled allocations per
      // call) is gone, which is what flipped sparse compressed AndCount
      // below dense.
      if (a.type == Type::kArray && b.type == Type::kArray) {
        n += IntersectArraysCount(a.vals, b.vals);
      } else if (a.type == Type::kArray && b.type == Type::kBitmap) {
        n += simd::ArrayBitmapCount(a.vals.data(), a.vals.size(),
                                    b.bits.data());
      } else if (a.type == Type::kBitmap && b.type == Type::kArray) {
        n += simd::ArrayBitmapCount(b.vals.data(), b.vals.size(),
                                    a.bits.data());
      } else if (a.type == Type::kBitmap && b.type == Type::kBitmap) {
        n += AndCountWords(a.bits.data(), b.bits.data(), ChunkWords(a.key));
      } else if (a.type == Type::kRun && b.type == Type::kRun) {
        n += RunRunCount(a.vals, b.vals);
      } else if (a.type == Type::kRun) {
        n += b.type == Type::kArray ? ArrayRunCount(b.vals, a.vals)
                                    : RunBitmapCountWords(a.vals,
                                                          b.bits.data());
      } else {  // b.type == kRun
        n += a.type == Type::kArray ? ArrayRunCount(a.vals, b.vals)
                                    : RunBitmapCountWords(b.vals,
                                                          a.bits.data());
      }
      ++i;
      ++j;
    }
  }
  return n;
}

void CompressedRowSet::AndNot(const CompressedRowSet& other) {
  FALCON_DCHECK(universe_size_ == other.universe_size_);
  std::vector<Container> out;
  out.reserve(containers_.size());
  std::vector<uint64_t> buf_a, buf_b;  // Lazy decode scratch (runs only).
  size_t j = 0;
  for (size_t i = 0; i < containers_.size(); ++i) {
    Container& a = containers_[i];
    while (j < other.containers_.size() && other.containers_[j].key < a.key) {
      ++j;
    }
    if (j == other.containers_.size() || other.containers_[j].key != a.key) {
      out.push_back(std::move(a));  // No overlap: keep as is.
      continue;
    }
    const Container& b = other.containers_[j];
    Container r;
    r.key = a.key;
    if (a.type == Type::kArray &&
        (b.type == Type::kArray || b.type == Type::kBitmap ||
         b.type == Type::kRun)) {
      r.type = Type::kArray;
      if (b.type == Type::kArray) {
        r.vals.reserve(a.vals.size());
        std::set_difference(a.vals.begin(), a.vals.end(), b.vals.begin(),
                            b.vals.end(), std::back_inserter(r.vals));
      } else if (b.type == Type::kBitmap) {
        for (uint16_t v : a.vals) {
          if (!BitmapTest(b.bits, v)) r.vals.push_back(v);
        }
      } else {
        DecodeLazy(b, buf_b);
        for (uint16_t v : a.vals) {
          if (!BitmapTest(buf_b, v)) r.vals.push_back(v);
        }
      }
      r.card = static_cast<uint32_t>(r.vals.size());
    } else {
      const uint64_t* wa =
          a.type == Type::kBitmap ? a.bits.data() : DecodeLazy(a, buf_a);
      const uint64_t* wb =
          b.type == Type::kBitmap ? b.bits.data() : DecodeLazy(b, buf_b);
      size_t nwords = ChunkWords(a.key);
      std::vector<uint64_t> diff(nwords);
      for (size_t w = 0; w < nwords; ++w) diff[w] = wa[w] & ~wb[w];
      r = BuildFromWords(a.key, diff.data(), nwords, /*try_runs=*/false);
    }
    if (r.card > 0) out.push_back(std::move(r));
  }
  containers_ = std::move(out);
}

void CompressedRowSet::Or(const CompressedRowSet& other) {
  FALCON_DCHECK(universe_size_ == other.universe_size_);
  std::vector<Container> out;
  out.reserve(containers_.size() + other.containers_.size());
  std::vector<uint64_t> buf_a, buf_b;  // Lazy decode scratch (runs only).
  size_t i = 0, j = 0;
  while (i < containers_.size() || j < other.containers_.size()) {
    bool take_a = j == other.containers_.size() ||
                  (i < containers_.size() &&
                   containers_[i].key < other.containers_[j].key);
    bool take_b = i == containers_.size() ||
                  (j < other.containers_.size() &&
                   other.containers_[j].key < containers_[i].key);
    if (take_a) {
      out.push_back(std::move(containers_[i++]));
      continue;
    }
    if (take_b) {
      out.push_back(other.containers_[j++]);  // Copy.
      continue;
    }
    Container& a = containers_[i];
    const Container& b = other.containers_[j];
    Container r;
    r.key = a.key;
    if (a.type == Type::kArray && b.type == Type::kArray &&
        a.vals.size() + b.vals.size() <= kArrayMaxCard) {
      r.type = Type::kArray;
      r.vals.reserve(a.vals.size() + b.vals.size());
      std::set_union(a.vals.begin(), a.vals.end(), b.vals.begin(),
                     b.vals.end(), std::back_inserter(r.vals));
      r.card = static_cast<uint32_t>(r.vals.size());
    } else {
      const uint64_t* wa =
          a.type == Type::kBitmap ? a.bits.data() : DecodeLazy(a, buf_a);
      const uint64_t* wb =
          b.type == Type::kBitmap ? b.bits.data() : DecodeLazy(b, buf_b);
      size_t nwords = ChunkWords(a.key);
      std::vector<uint64_t> ored(nwords);
      for (size_t w = 0; w < nwords; ++w) ored[w] = wa[w] | wb[w];
      r = BuildFromWords(a.key, ored.data(), nwords, /*try_runs=*/false);
    }
    if (r.card > 0) out.push_back(std::move(r));
    ++i;
    ++j;
  }
  containers_ = std::move(out);
}

bool CompressedRowSet::IsSubsetOf(const CompressedRowSet& other) const {
  FALCON_DCHECK(universe_size_ == other.universe_size_);
  std::vector<uint64_t> buf_a, buf_b;  // Lazy decode scratch (runs only).
  size_t j = 0;
  for (const Container& a : containers_) {
    while (j < other.containers_.size() && other.containers_[j].key < a.key) {
      ++j;
    }
    if (j == other.containers_.size() || other.containers_[j].key != a.key) {
      return false;  // a has rows in a chunk other lacks entirely.
    }
    const Container& b = other.containers_[j];
    if (a.card > b.card) return false;
    if (a.type == Type::kArray) {
      if (b.type == Type::kArray) {
        if (!std::includes(b.vals.begin(), b.vals.end(), a.vals.begin(),
                           a.vals.end())) {
          return false;
        }
      } else if (b.type == Type::kBitmap) {
        for (uint16_t v : a.vals) {
          if (!BitmapTest(b.bits, v)) return false;
        }
      } else {
        DecodeLazy(b, buf_b);
        for (uint16_t v : a.vals) {
          if (!BitmapTest(buf_b, v)) return false;
        }
      }
    } else {
      const uint64_t* wa =
          a.type == Type::kBitmap ? a.bits.data() : DecodeLazy(a, buf_a);
      const uint64_t* wb =
          b.type == Type::kBitmap ? b.bits.data() : DecodeLazy(b, buf_b);
      size_t nwords = ChunkWords(a.key);
      for (size_t w = 0; w < nwords; ++w) {
        if (wa[w] & ~wb[w]) return false;
      }
    }
  }
  return true;
}

bool CompressedRowSet::DisjointWith(const CompressedRowSet& other) const {
  FALCON_DCHECK(universe_size_ == other.universe_size_);
  std::vector<uint64_t> buf_a, buf_b;  // Lazy decode scratch (runs only).
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    const Container& a = containers_[i];
    const Container& b = other.containers_[j];
    if (a.key < b.key) {
      ++i;
    } else if (b.key < a.key) {
      ++j;
    } else {
      if (a.type == Type::kArray && b.type != Type::kRun) {
        for (uint16_t v : a.vals) {
          bool hit = b.type == Type::kArray
                         ? std::binary_search(b.vals.begin(), b.vals.end(), v)
                         : BitmapTest(b.bits, v);
          if (hit) return false;
        }
      } else if (b.type == Type::kArray && a.type != Type::kRun) {
        for (uint16_t v : b.vals) {
          if (BitmapTest(a.bits, v)) return false;
        }
      } else {
        const uint64_t* wa =
            a.type == Type::kBitmap ? a.bits.data() : DecodeLazy(a, buf_a);
        const uint64_t* wb =
            b.type == Type::kBitmap ? b.bits.data() : DecodeLazy(b, buf_b);
        size_t nwords = ChunkWords(a.key);
        for (size_t w = 0; w < nwords; ++w) {
          if (wa[w] & wb[w]) return false;
        }
      }
      ++i;
      ++j;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Mixed kernels (dense operand)
// ---------------------------------------------------------------------------

void CompressedRowSet::And(const RowSet& dense) {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  std::vector<Container> out;
  out.reserve(containers_.size());
  std::vector<uint64_t> buf;  // Lazy decode scratch.
  for (Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    size_t nwords = ChunkWords(c.key);
    Container r;
    r.key = c.key;
    if (c.type == Type::kArray) {
      r.type = Type::kArray;
      for (uint16_t v : c.vals) {
        if (dense.Test((static_cast<size_t>(c.key) << 16) + v)) {
          r.vals.push_back(v);
        }
      }
      r.card = static_cast<uint32_t>(r.vals.size());
    } else {
      const uint64_t* wc =
          c.type == Type::kBitmap ? c.bits.data() : DecodeLazy(c, buf);
      std::vector<uint64_t> anded(nwords);
      for (size_t w = 0; w < nwords; ++w) anded[w] = wc[w] & dense.word(base + w);
      r = BuildFromWords(c.key, anded.data(), nwords, /*try_runs=*/false);
    }
    if (r.card > 0) out.push_back(std::move(r));
  }
  containers_ = std::move(out);
}

void CompressedRowSet::AndNot(const RowSet& dense) {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  std::vector<Container> out;
  out.reserve(containers_.size());
  std::vector<uint64_t> buf;  // Lazy decode scratch.
  for (Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    size_t nwords = ChunkWords(c.key);
    Container r;
    r.key = c.key;
    if (c.type == Type::kArray) {
      r.type = Type::kArray;
      for (uint16_t v : c.vals) {
        if (!dense.Test((static_cast<size_t>(c.key) << 16) + v)) {
          r.vals.push_back(v);
        }
      }
      r.card = static_cast<uint32_t>(r.vals.size());
    } else {
      const uint64_t* wc =
          c.type == Type::kBitmap ? c.bits.data() : DecodeLazy(c, buf);
      std::vector<uint64_t> diff(nwords);
      for (size_t w = 0; w < nwords; ++w) {
        diff[w] = wc[w] & ~dense.word(base + w);
      }
      r = BuildFromWords(c.key, diff.data(), nwords, /*try_runs=*/false);
    }
    if (r.card > 0) out.push_back(std::move(r));
  }
  containers_ = std::move(out);
}

void CompressedRowSet::Or(const RowSet& dense) {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  size_t total_words = num_words();
  std::vector<uint64_t> buf(kWordsPerChunk);
  std::vector<Container> out;
  out.reserve(containers_.size());
  size_t ci = 0;
  for (size_t base = 0; base < total_words; base += kWordsPerChunk) {
    uint16_t key = static_cast<uint16_t>(base / kWordsPerChunk);
    size_t nwords = std::min(kWordsPerChunk, total_words - base);
    bool dense_any = false;
    for (size_t w = 0; w < nwords; ++w) dense_any |= dense.word(base + w) != 0;
    bool have = ci < containers_.size() && containers_[ci].key == key;
    if (!dense_any) {
      if (have) out.push_back(std::move(containers_[ci++]));
      continue;
    }
    if (have) {
      Decode(containers_[ci], buf.data());
      ++ci;
    } else {
      std::memset(buf.data(), 0, kWordsPerChunk * sizeof(uint64_t));
    }
    for (size_t w = 0; w < nwords; ++w) buf[w] |= dense.word(base + w);
    Container r = BuildFromWords(key, buf.data(), nwords, /*try_runs=*/false);
    if (r.card > 0) out.push_back(std::move(r));
  }
  containers_ = std::move(out);
}

size_t CompressedRowSet::AndCount(const RowSet& dense) const {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  size_t n = 0;
  for (const Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    const uint64_t* dw = dense.word_data() + base;
    switch (c.type) {
      case Type::kArray:
        // Row indices within a chunk never reach past the tail words, so
        // the gathered membership test stays in bounds on partial chunks.
        n += simd::ArrayBitmapCount(c.vals.data(), c.vals.size(), dw);
        break;
      case Type::kBitmap:
        n += simd::AndCountWords(c.bits.data(), dw, ChunkWords(c.key));
        break;
      case Type::kRun:
        // Edge-masked popcounts per run over the dense words — no decode.
        n += RunBitmapCountWords(c.vals, dw);
        break;
    }
  }
  return n;
}

bool CompressedRowSet::IsSubsetOf(const RowSet& dense) const {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  std::vector<uint64_t> buf;  // Lazy decode scratch.
  for (const Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    size_t row_base = static_cast<size_t>(c.key) << 16;
    if (c.type == Type::kArray) {
      for (uint16_t v : c.vals) {
        if (!dense.Test(row_base + v)) return false;
      }
      continue;
    }
    const uint64_t* wc =
        c.type == Type::kBitmap ? c.bits.data() : DecodeLazy(c, buf);
    size_t nwords = ChunkWords(c.key);
    for (size_t w = 0; w < nwords; ++w) {
      if (wc[w] & ~dense.word(base + w)) return false;
    }
  }
  return true;
}

bool CompressedRowSet::ContainsAll(const RowSet& dense) const {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  size_t total_words = num_words();
  std::vector<uint64_t> buf;  // Lazy decode scratch.
  size_t ci = 0;
  for (size_t base = 0; base < total_words; base += kWordsPerChunk) {
    uint16_t key = static_cast<uint16_t>(base / kWordsPerChunk);
    size_t nwords = std::min(kWordsPerChunk, total_words - base);
    while (ci < containers_.size() && containers_[ci].key < key) ++ci;
    bool have = ci < containers_.size() && containers_[ci].key == key;
    if (!have) {
      for (size_t w = 0; w < nwords; ++w) {
        if (dense.word(base + w) != 0) return false;
      }
      continue;
    }
    const Container& c = containers_[ci];
    const uint64_t* wc =
        c.type == Type::kBitmap ? c.bits.data() : DecodeLazy(c, buf);
    for (size_t w = 0; w < nwords; ++w) {
      if (dense.word(base + w) & ~wc[w]) return false;
    }
  }
  return true;
}

bool CompressedRowSet::DisjointWith(const RowSet& dense) const {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  std::vector<uint64_t> buf;  // Lazy decode scratch.
  for (const Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    size_t row_base = static_cast<size_t>(c.key) << 16;
    if (c.type == Type::kArray) {
      for (uint16_t v : c.vals) {
        if (dense.Test(row_base + v)) return false;
      }
      continue;
    }
    const uint64_t* wc =
        c.type == Type::kBitmap ? c.bits.data() : DecodeLazy(c, buf);
    size_t nwords = ChunkWords(c.key);
    for (size_t w = 0; w < nwords; ++w) {
      if (wc[w] & dense.word(base + w)) return false;
    }
  }
  return true;
}

void CompressedRowSet::AndInto(RowSet& dense) const {
  FALCON_DCHECK(universe_size_ == dense.universe_size());
  size_t total_words = dense.num_words();
  std::vector<uint64_t> buf;  // Lazy decode scratch.
  size_t ci = 0;
  for (size_t base = 0; base < total_words; base += kWordsPerChunk) {
    uint16_t key = static_cast<uint16_t>(base / kWordsPerChunk);
    size_t nwords = std::min(kWordsPerChunk, total_words - base);
    while (ci < containers_.size() && containers_[ci].key < key) ++ci;
    bool have = ci < containers_.size() && containers_[ci].key == key;
    if (!have) {
      for (size_t w = 0; w < nwords; ++w) dense.SetWord(base + w, 0);
      continue;
    }
    const Container& c = containers_[ci];
    const uint64_t* wc =
        c.type == Type::kBitmap ? c.bits.data() : DecodeLazy(c, buf);
    for (size_t w = 0; w < nwords; ++w) {
      dense.SetWord(base + w, dense.word(base + w) & wc[w]);
    }
  }
}

CompressedRowSet CompressedRowSet::Complement() const {
  CompressedRowSet out(universe_size_);
  size_t total_words = num_words();
  if (total_words == 0) return out;
  std::vector<uint64_t> buf(kWordsPerChunk);
  size_t ci = 0;
  for (size_t base = 0; base < total_words; base += kWordsPerChunk) {
    uint16_t key = static_cast<uint16_t>(base / kWordsPerChunk);
    size_t nwords = std::min(kWordsPerChunk, total_words - base);
    while (ci < containers_.size() && containers_[ci].key < key) ++ci;
    if (ci < containers_.size() && containers_[ci].key == key) {
      Decode(containers_[ci], buf.data());
      for (size_t w = 0; w < nwords; ++w) buf[w] = ~buf[w];
    } else {
      std::memset(buf.data(), 0xFF, nwords * sizeof(uint64_t));
    }
    // Trim bits beyond the universe in the final word.
    size_t tail = universe_size_ & 63;
    if (tail != 0 && base + nwords == total_words) {
      buf[nwords - 1] &= (uint64_t{1} << tail) - 1;
    }
    // Complements are interval-shaped (the complement of a sparse posting
    // is almost-all-ones): let BuildFromWords pick runs.
    Container r = BuildFromWords(key, buf.data(), nwords, /*try_runs=*/true);
    if (r.card > 0) out.containers_.push_back(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Equality and hashing
// ---------------------------------------------------------------------------

bool CompressedRowSet::operator==(const CompressedRowSet& other) const {
  if (universe_size_ != other.universe_size_) return false;
  if (containers_.size() != other.containers_.size()) return false;
  std::vector<uint64_t> buf_a, buf_b;  // Lazy decode scratch (runs only).
  for (size_t i = 0; i < containers_.size(); ++i) {
    const Container& a = containers_[i];
    const Container& b = other.containers_[i];
    if (a.key != b.key || a.card != b.card) return false;
    if (a.type == b.type) {
      if (a.type == Type::kBitmap ? a.bits != b.bits : a.vals != b.vals) {
        return false;
      }
      continue;
    }
    // Mixed encodings of possibly-equal bits: compare canonically.
    DecodeLazy(a, buf_a);
    DecodeLazy(b, buf_b);
    if (std::memcmp(buf_a.data(), buf_b.data(),
                    kWordsPerChunk * sizeof(uint64_t)) != 0) {
      return false;
    }
  }
  return true;
}

bool CompressedRowSet::operator==(const RowSet& dense) const {
  if (universe_size_ != dense.universe_size()) return false;
  size_t total_words = num_words();
  std::vector<uint64_t> buf(kWordsPerChunk);
  size_t ci = 0;
  for (size_t base = 0; base < total_words; base += kWordsPerChunk) {
    uint16_t key = static_cast<uint16_t>(base / kWordsPerChunk);
    size_t nwords = std::min(kWordsPerChunk, total_words - base);
    bool have = ci < containers_.size() && containers_[ci].key == key;
    if (have) {
      Decode(containers_[ci], buf.data());
      ++ci;
    } else {
      std::memset(buf.data(), 0, nwords * sizeof(uint64_t));
    }
    for (size_t w = 0; w < nwords; ++w) {
      if (buf[w] != dense.word(base + w)) return false;
    }
  }
  return ci == containers_.size();
}

uint64_t CompressedRowSet::Hash() const {
  uint64_t h = kFnvOffset;
  size_t cursor = 0;  // Next logical word to fold in.
  std::vector<uint64_t> buf(kWordsPerChunk);
  size_t total_words = num_words();
  for (const Container& c : containers_) {
    size_t base = static_cast<size_t>(c.key) * kWordsPerChunk;
    h = MulPrimePow(h, base - cursor);  // Zero-word gap.
    Decode(c, buf.data());
    size_t nwords = ChunkWords(c.key);
    for (size_t w = 0; w < nwords; ++w) {
      h ^= buf[w];
      h *= kFnvPrime;
    }
    cursor = base + nwords;
  }
  return MulPrimePow(h, total_words - cursor);
}

}  // namespace falcon
