// RowSet: a fixed-universe dynamic bitmap over table row ids. This is the
// workhorse representation for query affected-sets in the lattice: node sets
// are built by ANDing per-predicate posting bitmaps, and incremental lattice
// maintenance is a single AND-NOT per node.
#ifndef FALCON_COMMON_ROW_SET_H_
#define FALCON_COMMON_ROW_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/simd.h"

namespace falcon {

/// Dense bitmap over rows [0, universe_size).
class RowSet {
 public:
  RowSet() = default;

  /// Creates an empty set over `universe_size` rows.
  explicit RowSet(size_t universe_size)
      : universe_size_(universe_size),
        words_((universe_size + 63) / 64, 0) {}

  /// Creates a set over `universe_size` rows with every bit set to `fill`.
  RowSet(size_t universe_size, bool fill) : RowSet(universe_size) {
    if (fill) SetAll();
  }

  size_t universe_size() const { return universe_size_; }

  /// Grows the universe to `new_universe` rows (streaming append). Existing
  /// bits are preserved; the new rows [old, new) start cleared. Shrinking is
  /// not supported — row ids are stable for the lifetime of a table.
  void Resize(size_t new_universe) {
    FALCON_DCHECK(new_universe >= universe_size_);
    if (new_universe <= universe_size_) return;
    // The old tail word already keeps bits past universe_size() zeroed
    // (TrimTail invariant), so growing is just widening the storage.
    universe_size_ = new_universe;
    words_.resize((new_universe + 63) / 64, 0);
  }

  /// Word-level access for blocked kernels (parallel scans shard by word so
  /// writers touch disjoint ranges). Word i covers rows [64i, 64i+64).
  size_t num_words() const { return words_.size(); }
  uint64_t word(size_t i) const { return words_[i]; }
  /// Raw word storage for blocked SIMD kernels (read-only).
  const uint64_t* word_data() const { return words_.data(); }
  void SetWord(size_t i, uint64_t w) {
    // The tail word covers rows past universe_size(); storing raw bits there
    // would corrupt Count()/Complement()/Hash() invariants, so trim them.
    size_t tail = universe_size_ & 63;
    if (tail != 0 && i + 1 == words_.size()) {
      w &= (uint64_t{1} << tail) - 1;
    }
    words_[i] = w;
  }

  void Set(size_t row) { words_[row >> 6] |= (uint64_t{1} << (row & 63)); }
  void Clear(size_t row) { words_[row >> 6] &= ~(uint64_t{1} << (row & 63)); }
  bool Test(size_t row) const {
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  /// Sets every bit in the universe.
  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }

  /// Clears every bit.
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits (runtime-dispatched SIMD popcount loop).
  size_t Count() const {
    return simd::PopcountWords(words_.data(), words_.size());
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// this &= other.
  void And(const RowSet& other) {
    FALCON_DCHECK(universe_size_ == other.universe_size_);
    simd::AndWords(words_.data(), other.words_.data(), words_.size());
  }

  /// this = a & b in one fused pass, returning the cardinality of the
  /// result — the kernel counts in registers while it writes, so the
  /// copy-then-And-then-popcount sequence collapses to two read streams
  /// and one write. Both operands keep their tail words clean, so the
  /// result does too.
  size_t AssignAnd(const RowSet& a, const RowSet& b) {
    FALCON_DCHECK(a.universe_size_ == b.universe_size_);
    universe_size_ = a.universe_size_;
    words_.resize(a.words_.size());
    return simd::And3CountWords(words_.data(), a.words_.data(),
                                b.words_.data(), words_.size());
  }

  /// this &= ~other.
  void AndNot(const RowSet& other) {
    FALCON_DCHECK(universe_size_ == other.universe_size_);
    simd::AndNotWords(words_.data(), other.words_.data(), words_.size());
  }

  /// this |= other.
  void Or(const RowSet& other) {
    FALCON_DCHECK(universe_size_ == other.universe_size_);
    simd::OrWords(words_.data(), other.words_.data(), words_.size());
  }

  /// Complement within the universe: rows NOT in this set.
  RowSet Complement() const {
    RowSet out(universe_size_);
    for (size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
    out.TrimTail();
    return out;
  }

  /// Fused AND + popcount kernel: returns |this ∩ other| in one pass over
  /// the words without materializing an intermediate bitmap. This is the
  /// hot path for lazy lattice counting — legal whenever the caller needs
  /// only the cardinality of the intersection, never its bits.
  size_t AndCount(const RowSet& other) const {
    FALCON_DCHECK(universe_size_ == other.universe_size_);
    return simd::AndCountWords(words_.data(), other.words_.data(),
                               words_.size());
  }

  /// Returns |this ∩ other| without materializing the intersection.
  /// (Alias of AndCount, kept for existing callers.)
  size_t IntersectCount(const RowSet& other) const { return AndCount(other); }

  /// True iff this ⊆ other.
  bool IsSubsetOf(const RowSet& other) const {
    FALCON_DCHECK(universe_size_ == other.universe_size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  /// True iff this ∩ other = ∅.
  bool DisjointWith(const RowSet& other) const {
    FALCON_DCHECK(universe_size_ == other.universe_size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return false;
    }
    return true;
  }

  bool operator==(const RowSet& other) const {
    return universe_size_ == other.universe_size_ && words_ == other.words_;
  }

  /// FNV-1a style hash of the bitmap contents (used for closed-set grouping).
  uint64_t Hash() const {
    uint64_t h = 1469598103934665603ull;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Calls `fn(row)` for every set row in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      while (w) {
        int bit = std::countr_zero(w);
        fn(i * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Returns true iff `fn(row)` holds for every set row; stops at the first
  /// failure.
  template <typename Fn>
  bool AllOf(Fn&& fn) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      while (w) {
        int bit = std::countr_zero(w);
        if (!fn(i * 64 + static_cast<size_t>(bit))) return false;
        w &= w - 1;
      }
    }
    return true;
  }

  /// Materializes set rows as a vector (test/debug convenience).
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> rows;
    rows.reserve(Count());
    ForEach([&](size_t r) { rows.push_back(static_cast<uint32_t>(r)); });
    return rows;
  }

  /// Resident heap bytes of the word storage (capacity-based, matching the
  /// exact accounting in the posting index).
  size_t HeapBytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// Returns the first set row, or universe_size() if empty.
  size_t First() const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i]) {
        return i * 64 + static_cast<size_t>(std::countr_zero(words_[i]));
      }
    }
    return universe_size_;
  }

 private:
  void TrimTail() {
    size_t tail = universe_size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t universe_size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_ROW_SET_H_
