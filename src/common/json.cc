#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace falcon {

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_ : def;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : def;
}

double JsonValue::GetDouble(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : def;
}

bool JsonValue::GetBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : def;
}

JsonValue& JsonValue::Append(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void SerializeTo(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(v.AsInt()));
      out += buf;
      break;
    }
    case JsonValue::Type::kDouble: {
      double d = v.AsDouble();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no Inf/NaN; null is the least-bad lie.
        break;
      }
      // Shortest representation that round-trips: 17 digits always do, but
      // "0.05" must not become "0.050000000000000003".
      char buf[40];
      for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d) break;
      }
      out += buf;
      break;
    }
    case JsonValue::Type::kString:
      out += JsonEscape(v.AsString());
      break;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        SerializeTo(item, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, member] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        out += JsonEscape(k);
        out.push_back(':');
        SerializeTo(member, out);
      }
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    FALCON_RETURN_IF_ERROR(ParseValue(0, &v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth, out);
      case '[': return ParseArray(depth, out);
      case '"': {
        std::string s;
        FALCON_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue(true);
          return Status::Ok();
        }
        return Err("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue(false);
          return Status::Ok();
        }
        return Err("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue();
          return Status::Ok();
        }
        return Err("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      std::string key;
      FALCON_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after object key");
      SkipWs();
      JsonValue member;
      FALCON_RETURN_IF_ERROR(ParseValue(depth + 1, &member));
      out->Set(key, std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Err("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      SkipWs();
      JsonValue item;
      FALCON_RETURN_IF_ERROR(ParseValue(depth + 1, &item));
      out->Append(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Err("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Err("bad hex digit in \\u escape");
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Err("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          FALCON_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00–DFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Err("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            FALCON_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Err("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Err("bad escape character");
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Err("bad number");
    }
    // JSON forbids leading zeros: "01" is two tokens, not a number.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Err("leading zero in number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string literal(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(literal.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    double d = std::strtod(literal.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("bad number");
    *out = JsonValue(d);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, out);
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace falcon
