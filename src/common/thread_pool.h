// ThreadPool: a small work-sharding pool for the data-parallel kernels
// (posting scans, diff counting, correlation sampling). Work is split into
// contiguous shards handed to persistent workers; ParallelFor blocks until
// every shard finished, so callers never observe partial results.
//
// Determinism: every kernel built on ParallelFor writes disjoint output
// ranges (bitmap words, per-shard accumulators merged in shard order), so
// results are bit-identical to the serial loop regardless of thread count.
//
// Re-entrancy: ParallelFor may be called from inside a ParallelFor shard
// (a service worker running a parallel scan) and concurrently from many
// threads. Each call tracks its own batch of shards, and a waiting caller
// helps drain the shared queue instead of blocking, so nested calls can
// never deadlock the fixed-size pool and never spawn extra threads.
#ifndef FALCON_COMMON_THREAD_POOL_H_
#define FALCON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace falcon {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means run everything inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Splits [0, n) into at most num_threads()+1 contiguous shards and calls
  /// `fn(begin, end)` for each, blocking until all shards complete. Runs
  /// inline when the pool is empty or `n < min_grain` (parallelism has a
  /// fixed cost; tiny inputs are faster serial). `fn` must be safe to call
  /// concurrently on disjoint ranges.
  void ParallelFor(size_t n, size_t min_grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Process-wide pool sized from FALCON_THREADS (defaults to the hardware
  /// concurrency; 1 disables threading). Garbage FALCON_THREADS values log
  /// a warning and fall back to the default instead of degrading silently.
  static ThreadPool& Global();

 private:
  /// Per-ParallelFor completion state, allocated on the caller's stack.
  /// `pending` counts that call's shards still queued or executing; the
  /// caller returns only once it reaches zero, so the Batch outlives every
  /// worker touching it.
  struct Batch {
    size_t pending = 0;
  };

  struct Task {
    const std::function<void(size_t, size_t)>* fn;
    size_t begin;
    size_t end;
    Batch* batch;
  };

  void WorkerLoop();
  /// Runs one task and retires it against its batch. Returns with mu_ held
  /// by `lock`.
  void RunTask(const Task& task, std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Task> queue_;
  bool stop_ = false;
};

/// Validates a FALCON_THREADS value: a strictly positive integer with
/// optional surrounding whitespace, capped at 4096 (a fat-node sanity
/// bound). Anything else — non-numeric, untrimmed garbage like "8x", zero,
/// negative — is InvalidArgument with a diagnostic naming the input.
StatusOr<size_t> ParseThreadCount(std::string_view value);

}  // namespace falcon

#endif  // FALCON_COMMON_THREAD_POOL_H_
