// ThreadPool: a small work-sharding pool for the data-parallel kernels
// (posting scans, diff counting, correlation sampling). Work is split into
// contiguous shards handed to persistent workers; ParallelFor blocks until
// every shard finished, so callers never observe partial results.
//
// Determinism: every kernel built on ParallelFor writes disjoint output
// ranges (bitmap words, per-shard accumulators merged in shard order), so
// results are bit-identical to the serial loop regardless of thread count.
#ifndef FALCON_COMMON_THREAD_POOL_H_
#define FALCON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace falcon {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means run everything inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Splits [0, n) into at most num_threads()+1 contiguous shards and calls
  /// `fn(begin, end)` for each, blocking until all shards complete. Runs
  /// inline when the pool is empty or `n < min_grain` (parallelism has a
  /// fixed cost; tiny inputs are faster serial). `fn` must be safe to call
  /// concurrently on disjoint ranges.
  void ParallelFor(size_t n, size_t min_grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Process-wide pool sized from FALCON_THREADS (defaults to the hardware
  /// concurrency; 1 disables threading). Garbage FALCON_THREADS values log
  /// a warning and fall back to the default instead of degrading silently.
  static ThreadPool& Global();

 private:
  struct Task {
    const std::function<void(size_t, size_t)>* fn;
    size_t begin;
    size_t end;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Task> queue_;
  size_t pending_ = 0;  // Tasks queued or executing for the current batch.
  bool stop_ = false;
};

/// Validates a FALCON_THREADS value: a strictly positive integer with
/// optional surrounding whitespace, capped at 4096 (a fat-node sanity
/// bound). Anything else — non-numeric, untrimmed garbage like "8x", zero,
/// negative — is InvalidArgument with a diagnostic naming the input.
StatusOr<size_t> ParseThreadCount(std::string_view value);

}  // namespace falcon

#endif  // FALCON_COMMON_THREAD_POOL_H_
