// Minimal command-line flag parsing for the tools and benchmark binaries:
// --name=value and --name (boolean) forms, with positional arguments kept
// in order. No registration — callers query by name with defaults.
//
// Numeric getters parse strictly: "8abc" or "1 2" never silently truncate
// to a number. The default-returning getters log a warning and fall back on
// malformed values; the *Strict variants surface a Status for callers that
// must fail fast (e.g. service entry points).
#ifndef FALCON_COMMON_FLAGS_H_
#define FALCON_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/str_util.h"

namespace falcon {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          values_[arg.substr(2)] = "true";
        } else {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& default_value = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t default_value = 0) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    int64_t v = 0;
    if (!ParseInt64Strict(it->second, &v)) {
      FALCON_LOG(Warning) << "flag --" << name << "=" << it->second
                          << " is not an integer; using default "
                          << default_value;
      return default_value;
    }
    return v;
  }

  /// Like GetInt, but malformed input is an InvalidArgument error instead
  /// of a silently applied default. Absent flags still yield the default.
  StatusOr<int64_t> GetIntStrict(const std::string& name,
                                 int64_t default_value = 0) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    int64_t v = 0;
    if (!ParseInt64Strict(it->second, &v)) {
      return Status::InvalidArgument("flag --" + name + "=" + it->second +
                                     " is not an integer");
    }
    return v;
  }

  double GetDouble(const std::string& name, double default_value = 0) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    double v = 0;
    if (!ParseDoubleStrict(it->second, &v)) {
      FALCON_LOG(Warning) << "flag --" << name << "=" << it->second
                          << " is not a number; using default "
                          << default_value;
      return default_value;
    }
    return v;
  }

  /// Strict counterpart of GetDouble (see GetIntStrict).
  StatusOr<double> GetDoubleStrict(const std::string& name,
                                   double default_value = 0) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    double v = 0;
    if (!ParseDoubleStrict(it->second, &v)) {
      return Status::InvalidArgument("flag --" + name + "=" + it->second +
                                     " is not a number");
    }
    return v;
  }

  bool GetBool(const std::string& name, bool default_value = false) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_FLAGS_H_
