// Minimal command-line flag parsing for the tools and benchmark binaries:
// --name=value and --name (boolean) forms, with positional arguments kept
// in order. Getters register the flags they touch (name, default, help
// text), so after a binary has declared everything it understands a single
// Done() call renders --help and rejects unknown --flags with a diagnostic
// instead of silently ignoring a typo.
//
// Usage pattern:
//   Flags flags(argc, argv);
//   double scale = flags.GetDouble("scale", 1.0, "dataset scale factor");
//   if (auto rc = flags.Done("bench_foo — what it measures")) return *rc;
//
// Numeric getters parse strictly: "8abc" or "1 2" never silently truncate
// to a number. The default-returning getters log a warning and fall back on
// malformed values; the *Strict variants surface a Status for callers that
// must fail fast (e.g. service entry points).
#ifndef FALCON_COMMON_FLAGS_H_
#define FALCON_COMMON_FLAGS_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/str_util.h"

namespace falcon {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          values_[arg.substr(2)] = "true";
        } else {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& default_value = "",
                        const std::string& help = "") const {
    Register(name, "\"" + default_value + "\"", help);
    auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t default_value = 0,
                 const std::string& help = "") const {
    Register(name, std::to_string(default_value), help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    int64_t v = 0;
    if (!ParseInt64Strict(it->second, &v)) {
      FALCON_LOG(Warning) << "flag --" << name << "=" << it->second
                          << " is not an integer; using default "
                          << default_value;
      return default_value;
    }
    return v;
  }

  /// Like GetInt, but malformed input is an InvalidArgument error instead
  /// of a silently applied default. Absent flags still yield the default.
  StatusOr<int64_t> GetIntStrict(const std::string& name,
                                 int64_t default_value = 0,
                                 const std::string& help = "") const {
    Register(name, std::to_string(default_value), help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    int64_t v = 0;
    if (!ParseInt64Strict(it->second, &v)) {
      return Status::InvalidArgument("flag --" + name + "=" + it->second +
                                     " is not an integer");
    }
    return v;
  }

  double GetDouble(const std::string& name, double default_value = 0,
                   const std::string& help = "") const {
    Register(name, FormatDouble(default_value), help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    double v = 0;
    if (!ParseDoubleStrict(it->second, &v)) {
      FALCON_LOG(Warning) << "flag --" << name << "=" << it->second
                          << " is not a number; using default "
                          << default_value;
      return default_value;
    }
    return v;
  }

  /// Strict counterpart of GetDouble (see GetIntStrict).
  StatusOr<double> GetDoubleStrict(const std::string& name,
                                   double default_value = 0,
                                   const std::string& help = "") const {
    Register(name, FormatDouble(default_value), help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    double v = 0;
    if (!ParseDoubleStrict(it->second, &v)) {
      return Status::InvalidArgument("flag --" + name + "=" + it->second +
                                     " is not a number");
    }
    return v;
  }

  bool GetBool(const std::string& name, bool default_value = false,
               const std::string& help = "") const {
    Register(name, default_value ? "true" : "false", help);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

  /// Documents a flag without reading it — for flags whose getter runs
  /// conditionally (e.g. per-subcommand options) but that must still show
  /// in --help and count as known for the unknown-flag check.
  void Describe(const std::string& name, const std::string& default_repr,
                const std::string& help = "") const {
    Register(name, default_repr, help);
  }

  /// Finishes flag handling once every flag the binary understands has
  /// been read or Describe()d:
  ///  - `--help` prints `description` plus the registered flag table to
  ///    stdout and returns 0;
  ///  - any --flag the binary never registered prints a diagnostic to
  ///    stderr (naming the flag, suggesting --help) and returns 2;
  ///  - otherwise returns nullopt and the caller proceeds.
  /// Typical use: `if (auto rc = flags.Done("tool — purpose")) return *rc;`
  std::optional<int> Done(const std::string& description) const {
    if (Has("help")) {
      std::printf("%s\n", description.c_str());
      if (!registered_.empty()) {
        std::printf("\nFlags:\n");
        for (const FlagInfo& f : registered_) {
          std::printf("  --%-24s %s (default: %s)\n", f.name.c_str(),
                      f.help.empty() ? "" : f.help.c_str(),
                      f.default_repr.c_str());
        }
      }
      return 0;
    }
    std::vector<std::string> unknown_names;
    for (const auto& [name, value] : values_) {
      if (registered_index_.count(name) == 0) unknown_names.push_back(name);
    }
    std::sort(unknown_names.begin(), unknown_names.end());
    for (const std::string& name : unknown_names) {
      std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
    }
    if (!unknown_names.empty()) {
      std::fprintf(stderr, "run with --help to list supported flags\n");
      return 2;
    }
    return std::nullopt;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct FlagInfo {
    std::string name;
    std::string default_repr;
    std::string help;
  };

  static std::string FormatDouble(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
  }

  // First registration wins for the default/help shown in --help; repeat
  // getter calls with other defaults are common (per-subcommand reuse).
  void Register(const std::string& name, const std::string& default_repr,
                const std::string& help) const {
    if (!registered_index_.emplace(name, registered_.size()).second) return;
    registered_.push_back(FlagInfo{name, default_repr, help});
  }

  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // Lazily built by the const getters; mutable keeps their signatures.
  mutable std::vector<FlagInfo> registered_;
  mutable std::unordered_map<std::string, size_t> registered_index_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_FLAGS_H_
