// Minimal command-line flag parsing for the tools and benchmark binaries:
// --name=value and --name (boolean) forms, with positional arguments kept
// in order. No registration — callers query by name with defaults.
#ifndef FALCON_COMMON_FLAGS_H_
#define FALCON_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace falcon {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          values_[arg.substr(2)] = "true";
        } else {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& default_value = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t default_value = 0) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    try {
      return std::stoll(it->second);
    } catch (...) {
      return default_value;
    }
  }

  double GetDouble(const std::string& name, double default_value = 0) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    try {
      return std::stod(it->second);
    } catch (...) {
      return default_value;
    }
  }

  bool GetBool(const std::string& name, bool default_value = false) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_FLAGS_H_
