// HybridRowSet: a row set stored either dense (RowSet) or compressed
// (CompressedRowSet), chosen per instance by measured density. The lattice
// and posting index hold these so each node/posting picks the cheaper
// representation while every consumer sees one representation-independent
// surface: kernels dispatch on the operand pair, Hash()/operator== are
// canonical, and ForEach/AllOf/First/Count behave identically either way.
//
// Dense RowSet remains the scan-shard scratch representation; HybridRowSet
// is the *storage* type for long-lived bitmaps.
#ifndef FALCON_COMMON_HYBRID_ROW_SET_H_
#define FALCON_COMMON_HYBRID_ROW_SET_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/compressed_row_set.h"
#include "common/logging.h"
#include "common/row_set.h"

namespace falcon {

class HybridRowSet {
 public:
  /// Below this density a set compresses (1 row in 16 ≈ where array
  /// containers beat the dense word cost); above kDensifyDensity a
  /// compressed set converts back. The gap hysteresis keeps Compact cheap
  /// to call repeatedly.
  static constexpr double kCompressDensity = 1.0 / 16.0;
  static constexpr double kDensifyDensity = 1.0 / 8.0;
  /// Universes smaller than this stay dense — the dense bitmap is already
  /// tiny and container overhead would dominate.
  static constexpr size_t kMinCompressUniverse = size_t{1} << 14;

  HybridRowSet() = default;

  /// Empty dense set over `universe_size` rows.
  explicit HybridRowSet(size_t universe_size) : dense_(universe_size) {}

  /// Dense set with every bit set to `fill`.
  HybridRowSet(size_t universe_size, bool fill) : dense_(universe_size, fill) {}

  /* implicit */ HybridRowSet(RowSet dense) : dense_(std::move(dense)) {}
  /* implicit */ HybridRowSet(CompressedRowSet comp)
      : compressed_(true), comp_(std::move(comp)) {}

  bool compressed() const { return compressed_; }
  const RowSet& dense() const {
    FALCON_DCHECK(!compressed_);
    return dense_;
  }
  const CompressedRowSet& comp() const {
    FALCON_DCHECK(compressed_);
    return comp_;
  }

  size_t universe_size() const {
    return compressed_ ? comp_.universe_size() : dense_.universe_size();
  }
  size_t Count() const { return compressed_ ? comp_.Count() : dense_.Count(); }
  bool Empty() const { return compressed_ ? comp_.Empty() : dense_.Empty(); }

  void Set(size_t row) { compressed_ ? comp_.Set(row) : dense_.Set(row); }
  void Clear(size_t row) { compressed_ ? comp_.Clear(row) : dense_.Clear(row); }
  bool Test(size_t row) const {
    return compressed_ ? comp_.Test(row) : dense_.Test(row);
  }
  void ClearAll() { compressed_ ? comp_.ClearAll() : dense_.ClearAll(); }

  size_t First() const { return compressed_ ? comp_.First() : dense_.First(); }

  /// Grows the universe in the current representation (streaming append);
  /// new rows start cleared. Representation choice is untouched — callers
  /// re-Compact with the post-append cardinality when it matters.
  void Resize(size_t new_universe) {
    compressed_ ? comp_.Resize(new_universe) : dense_.Resize(new_universe);
  }

  // --- Binary kernels, full 2×2 dispatch -----------------------------------

  void And(const HybridRowSet& other) {
    if (compressed_) {
      other.compressed_ ? comp_.And(other.comp_) : comp_.And(other.dense_);
    } else if (other.compressed_) {
      other.comp_.AndInto(dense_);
    } else {
      dense_.And(other.dense_);
    }
  }

  void AndNot(const HybridRowSet& other) {
    if (compressed_) {
      other.compressed_ ? comp_.AndNot(other.comp_)
                        : comp_.AndNot(other.dense_);
    } else if (other.compressed_) {
      // dense &= ~compressed: clear each compressed row (sparse walk).
      other.comp_.ForEach([this](size_t r) { dense_.Clear(r); });
    } else {
      dense_.AndNot(other.dense_);
    }
  }

  void Or(const HybridRowSet& other) {
    if (compressed_) {
      other.compressed_ ? comp_.Or(other.comp_) : comp_.Or(other.dense_);
    } else if (other.compressed_) {
      other.comp_.ForEach([this](size_t r) { dense_.Set(r); });
    } else {
      dense_.Or(other.dense_);
    }
  }

  void And(const RowSet& other) {
    compressed_ ? comp_.And(other) : dense_.And(other);
  }
  void AndNot(const RowSet& other) {
    compressed_ ? comp_.AndNot(other) : dense_.AndNot(other);
  }
  void Or(const RowSet& other) {
    compressed_ ? comp_.Or(other) : dense_.Or(other);
  }

  /// this = a & b, returning the result's cardinality. Dense×dense — the
  /// bitmap-materialization hot path — runs the fused and3_count kernel
  /// (one pass, count accumulated in registers); any compressed operand
  /// falls back to copy-then-And-then-Count.
  size_t AssignAnd(const HybridRowSet& a, const HybridRowSet& b) {
    if (!a.compressed_ && !b.compressed_) {
      size_t count = dense_.AssignAnd(a.dense_, b.dense_);
      if (compressed_) {
        comp_ = CompressedRowSet();
        compressed_ = false;
      }
      return count;
    }
    *this = a;
    And(b);
    return Count();
  }

  size_t AndCount(const HybridRowSet& other) const {
    if (compressed_) {
      return other.compressed_ ? comp_.AndCount(other.comp_)
                               : comp_.AndCount(other.dense_);
    }
    return other.compressed_ ? other.comp_.AndCount(dense_)
                             : dense_.AndCount(other.dense_);
  }
  size_t AndCount(const RowSet& other) const {
    return compressed_ ? comp_.AndCount(other) : dense_.AndCount(other);
  }

  bool IsSubsetOf(const HybridRowSet& other) const {
    if (compressed_) {
      return other.compressed_ ? comp_.IsSubsetOf(other.comp_)
                               : comp_.IsSubsetOf(other.dense_);
    }
    return other.compressed_ ? other.comp_.ContainsAll(dense_)
                             : dense_.IsSubsetOf(other.dense_);
  }

  bool DisjointWith(const HybridRowSet& other) const {
    if (compressed_) {
      return other.compressed_ ? comp_.DisjointWith(other.comp_)
                               : comp_.DisjointWith(other.dense_);
    }
    return other.compressed_ ? other.comp_.DisjointWith(dense_)
                             : dense_.DisjointWith(other.dense_);
  }

  bool operator==(const HybridRowSet& other) const {
    if (compressed_) {
      return other.compressed_ ? comp_ == other.comp_ : comp_ == other.dense_;
    }
    return other.compressed_ ? other.comp_ == dense_ : dense_ == other.dense_;
  }
  bool operator==(const RowSet& other) const {
    return compressed_ ? comp_ == other : dense_ == other;
  }

  /// Canonical hash — identical across representations of equal bits.
  uint64_t Hash() const { return compressed_ ? comp_.Hash() : dense_.Hash(); }

  /// Complement within the universe, in the same representation (the
  /// complement of a sparse compressed set is interval-shaped and stays
  /// cheap as run containers).
  HybridRowSet Complement() const {
    return compressed_ ? HybridRowSet(comp_.Complement())
                       : HybridRowSet(dense_.Complement());
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    compressed_ ? comp_.ForEach(std::forward<Fn>(fn))
                : dense_.ForEach(std::forward<Fn>(fn));
  }
  template <typename Fn>
  bool AllOf(Fn&& fn) const {
    return compressed_ ? comp_.AllOf(std::forward<Fn>(fn))
                       : dense_.AllOf(std::forward<Fn>(fn));
  }

  std::vector<uint32_t> ToVector() const {
    return compressed_ ? comp_.ToVector() : dense_.ToVector();
  }

  RowSet ToDense() const { return compressed_ ? comp_.ToDense() : dense_; }

  /// Logical word export — works in either representation so scan shards
  /// never branch on storage.
  void CopyWords(size_t word_begin, size_t word_count, uint64_t* out) const {
    if (compressed_) {
      comp_.CopyWords(word_begin, word_count, out);
    } else {
      for (size_t i = 0; i < word_count; ++i) {
        out[i] = dense_.word(word_begin + i);
      }
    }
  }

  size_t HeapBytes() const {
    return compressed_ ? comp_.HeapBytes() : dense_.HeapBytes();
  }

  /// Picks the representation by measured density. Deterministic: depends
  /// only on `count` and the universe, never on the current encoding, so
  /// lazy/eager and dense/compressed schedules stay aligned. Pass the
  /// known cardinality to avoid a recount.
  void Compact(size_t count) {
    size_t n = universe_size();
    if (n < kMinCompressUniverse) {
      EnsureDense();
      return;
    }
    double density = static_cast<double>(count) / static_cast<double>(n);
    if (!compressed_ && density < kCompressDensity) {
      comp_ = CompressedRowSet::FromDense(dense_);
      comp_.RunOptimize();
      dense_ = RowSet();
      compressed_ = true;
    } else if (compressed_ && density > kDensifyDensity) {
      EnsureDense();
    }
  }
  void Compact() { Compact(Count()); }

  /// Forces the dense representation (scan scratch, naive init paths).
  void EnsureDense() {
    if (!compressed_) return;
    dense_ = comp_.ToDense();
    comp_ = CompressedRowSet();
    compressed_ = false;
  }

  /// Forces the compressed representation regardless of density.
  void EnsureCompressed() {
    if (compressed_) return;
    comp_ = CompressedRowSet::FromDense(dense_);
    comp_.RunOptimize();
    dense_ = RowSet();
    compressed_ = true;
  }

 private:
  bool compressed_ = false;
  RowSet dense_;
  CompressedRowSet comp_;
};

}  // namespace falcon

#endif  // FALCON_COMMON_HYBRID_ROW_SET_H_
