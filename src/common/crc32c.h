// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every session-journal record. Software slice-by-one
// table implementation — journal records are small, so the table lookup is
// not a bottleneck; the polynomial matches what storage systems (RocksDB,
// LevelDB, ext4) use so torn-record detection behaves identically.
#ifndef FALCON_COMMON_CRC32C_H_
#define FALCON_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace falcon {

/// Extends `crc` (a previous Crc32c result, or 0 for a fresh stream) with
/// `data`. The running state is kept pre/post-inverted internally, so
/// chained calls equal one call over the concatenation.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace falcon

#endif  // FALCON_COMMON_CRC32C_H_
