// Minimal JSON value + parser/serializer for the service wire protocol
// (line-delimited JSON requests/responses) and bench provenance blocks.
// No external dependencies; strict enough for machine-to-machine use:
// rejects trailing garbage, unterminated strings, bad escapes, and
// pathological nesting. Numbers keep int64 fidelity when the literal is
// integral (session ids, row counts, seeds) and fall back to double.
#ifndef FALCON_COMMON_JSON_H_
#define FALCON_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace falcon {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}             // NOLINT
  JsonValue(int64_t i) : type_(Type::kInt), int_(i) {}            // NOLINT
  JsonValue(int i) : type_(Type::kInt), int_(i) {}                // NOLINT
  JsonValue(size_t u) : type_(Type::kInt),                        // NOLINT
                        int_(static_cast<int64_t>(u)) {}
  JsonValue(double d) : type_(Type::kDouble), double_(d) {}       // NOLINT
  JsonValue(std::string s) : type_(Type::kString),                // NOLINT
                             string_(std::move(s)) {}
  JsonValue(std::string_view s) : type_(Type::kString),           // NOLINT
                                  string_(s) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_bool() const { return type_ == Type::kBool; }

  // Raw accessors (caller checks the type; mismatches return defaults).
  bool AsBool(bool def = false) const {
    return type_ == Type::kBool ? bool_ : def;
  }
  int64_t AsInt(int64_t def = 0) const {
    if (type_ == Type::kInt) return int_;
    if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
    return def;
  }
  double AsDouble(double def = 0.0) const {
    if (type_ == Type::kDouble) return double_;
    if (type_ == Type::kInt) return static_cast<double>(int_);
    return def;
  }
  const std::string& AsString() const { return string_; }

  // Object API. Set() appends or overwrites; insertion order is preserved
  // so serialized output is stable.
  JsonValue& Set(std::string_view key, JsonValue value);
  const JsonValue* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

  // Keyed getters with defaults (absent key or type mismatch → default).
  std::string GetString(std::string_view key,
                        const std::string& def = "") const;
  int64_t GetInt(std::string_view key, int64_t def = 0) const;
  double GetDouble(std::string_view key, double def = 0.0) const;
  bool GetBool(std::string_view key, bool def = false) const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Array API.
  JsonValue& Append(JsonValue value);
  const std::vector<JsonValue>& items() const { return items_; }
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

  /// Compact single-line serialization (never emits raw newlines, so one
  /// serialized value is always one wire-protocol line).
  std::string Serialize() const;

  /// Strict parse of exactly one JSON value (trailing whitespace allowed,
  /// anything else is InvalidArgument). Depth-capped at 64.
  static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` as a JSON string literal including the quotes.
std::string JsonEscape(std::string_view s);

}  // namespace falcon

#endif  // FALCON_COMMON_JSON_H_
