#include "relational/schema.h"

namespace falcon {

Schema::Schema(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i], static_cast<int>(i));
  }
}

int Schema::AttrIndex(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

}  // namespace falcon
