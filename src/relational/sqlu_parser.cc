#include "relational/sqlu_parser.h"

#include <cctype>
#include <string>

#include "common/str_util.h"

namespace falcon {
namespace {

// Minimal tokenizer over the SQLU fragment.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Returns the next token, or empty string at end. Quoted strings are
  /// returned unquoted with escapes resolved; `was_quoted` reports quoting.
  StatusOr<std::string> Next(bool* was_quoted) {
    *was_quoted = false;
    SkipSpace();
    if (pos_ >= input_.size()) return std::string();
    char c = input_[pos_];
    if (c == '\'' || c == '"') {
      *was_quoted = true;
      return Quoted(c);
    }
    if (c == '=' || c == ';' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < input_.size() && !std::isspace(static_cast<unsigned char>(
                                       input_[pos_])) &&
           input_[pos_] != '=' && input_[pos_] != ';' && input_[pos_] != ',' &&
           input_[pos_] != '\'' && input_[pos_] != '"') {
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<std::string> Quoted(char quote) {
    ++pos_;  // Consume the opening quote.
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == quote) {
        if (quote == '\'' && pos_ < input_.size() && input_[pos_] == '\'') {
          out += '\'';  // '' escape inside single quotes.
          ++pos_;
          continue;
        }
        return out;
      }
      out += c;
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  std::string_view input_;
  size_t pos_ = 0;
};

Status Malformed(const std::string& detail) {
  return Status::InvalidArgument("malformed SQLU statement: " + detail);
}

}  // namespace

StatusOr<SqluQuery> ParseSqlu(std::string_view sql) {
  Lexer lex(sql);
  bool quoted = false;
  SqluQuery query;

  FALCON_ASSIGN_OR_RETURN(std::string tok, lex.Next(&quoted));
  if (!EqualsIgnoreCase(tok, "UPDATE")) return Malformed("expected UPDATE");

  FALCON_ASSIGN_OR_RETURN(query.table, lex.Next(&quoted));
  if (query.table.empty()) return Malformed("expected table name");

  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (!EqualsIgnoreCase(tok, "SET")) return Malformed("expected SET");

  FALCON_ASSIGN_OR_RETURN(query.set_attr, lex.Next(&quoted));
  if (query.set_attr.empty()) return Malformed("expected SET attribute");

  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (tok != "=") return Malformed("expected '=' after SET attribute");

  FALCON_ASSIGN_OR_RETURN(query.set_value, lex.Next(&quoted));
  if (query.set_value.empty() && !quoted) return Malformed("expected SET value");

  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (tok.empty() || tok == ";") return query;
  if (!EqualsIgnoreCase(tok, "WHERE")) return Malformed("expected WHERE");

  while (true) {
    Predicate pred;
    FALCON_ASSIGN_OR_RETURN(pred.attr, lex.Next(&quoted));
    if (pred.attr.empty()) return Malformed("expected WHERE attribute");
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (tok != "=") return Malformed("expected '=' in WHERE predicate");
    FALCON_ASSIGN_OR_RETURN(pred.value, lex.Next(&quoted));
    if (pred.value.empty() && !quoted) {
      return Malformed("expected WHERE value");
    }
    query.where.push_back(std::move(pred));

    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (tok.empty() || tok == ";") break;
    if (!EqualsIgnoreCase(tok, "AND")) return Malformed("expected AND");
  }
  return query;
}

}  // namespace falcon
