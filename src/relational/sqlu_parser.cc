#include "relational/sqlu_parser.h"

#include <cctype>
#include <string>

#include "common/str_util.h"

namespace falcon {
namespace {

// Minimal tokenizer over the SQLU fragment.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Returns the next token, or empty string at end. Quoted strings are
  /// returned unquoted with escapes resolved; `was_quoted` reports quoting.
  StatusOr<std::string> Next(bool* was_quoted) {
    *was_quoted = false;
    SkipSpace();
    token_pos_ = pos_;
    if (pos_ >= input_.size()) return std::string();
    char c = input_[pos_];
    if (c == '\'' || c == '"') {
      *was_quoted = true;
      return Quoted(c);
    }
    if (c == '=' || c == ';' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < input_.size() && !std::isspace(static_cast<unsigned char>(
                                       input_[pos_])) &&
           input_[pos_] != '=' && input_[pos_] != ';' && input_[pos_] != ',' &&
           input_[pos_] != '\'' && input_[pos_] != '"') {
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Byte offset of the start of the most recently returned token.
  size_t token_pos() const { return token_pos_; }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<std::string> Quoted(char quote) {
    ++pos_;  // Consume the opening quote.
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == quote) {
        if (quote == '\'' && pos_ < input_.size() && input_[pos_] == '\'') {
          out += '\'';  // '' escape inside single quotes.
          ++pos_;
          continue;
        }
        return out;
      }
      out += c;
    }
    return Status::InvalidArgument(
        "unterminated string literal starting at offset " +
        std::to_string(token_pos_));
  }

  std::string_view input_;
  size_t pos_ = 0;
  size_t token_pos_ = 0;
};

// Separator characters are tokens in their own right; a bare one can never
// stand in for an identifier or a literal (`SET A = =` is malformed, not an
// assignment of the value "=").
bool IsSeparatorToken(const std::string& tok) {
  return tok == "=" || tok == ";" || tok == ",";
}

Status MalformedAt(const Lexer& lex, const std::string& detail,
                   const std::string& got) {
  std::string msg = "malformed SQLU statement: " + detail + " at offset " +
                    std::to_string(lex.token_pos());
  if (!got.empty()) msg += ", got '" + got + "'";
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace

StatusOr<SqluQuery> ParseSqlu(std::string_view sql) {
  Lexer lex(sql);
  bool quoted = false;
  SqluQuery query;

  FALCON_ASSIGN_OR_RETURN(std::string tok, lex.Next(&quoted));
  if (!EqualsIgnoreCase(tok, "UPDATE")) {
    return MalformedAt(lex, "expected UPDATE", tok);
  }

  FALCON_ASSIGN_OR_RETURN(query.table, lex.Next(&quoted));
  if (query.table.empty() || (!quoted && IsSeparatorToken(query.table))) {
    return MalformedAt(lex, "expected table name", query.table);
  }

  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (!EqualsIgnoreCase(tok, "SET")) return MalformedAt(lex, "expected SET", tok);

  FALCON_ASSIGN_OR_RETURN(query.set_attr, lex.Next(&quoted));
  if (query.set_attr.empty() ||
      (!quoted && IsSeparatorToken(query.set_attr))) {
    return MalformedAt(lex, "expected SET attribute", query.set_attr);
  }

  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (quoted || tok != "=") {
    return MalformedAt(lex, "expected '=' after SET attribute", tok);
  }

  FALCON_ASSIGN_OR_RETURN(query.set_value, lex.Next(&quoted));
  if (!quoted &&
      (query.set_value.empty() || IsSeparatorToken(query.set_value))) {
    return MalformedAt(lex, "expected SET value", query.set_value);
  }

  bool saw_semicolon = false;
  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (!quoted && tok == ";") {
    saw_semicolon = true;
  } else if (!tok.empty() || quoted) {
    if (!EqualsIgnoreCase(tok, "WHERE")) {
      return MalformedAt(lex, "expected WHERE", tok);
    }
    while (true) {
      Predicate pred;
      FALCON_ASSIGN_OR_RETURN(pred.attr, lex.Next(&quoted));
      if (pred.attr.empty() || (!quoted && IsSeparatorToken(pred.attr))) {
        return MalformedAt(lex, "expected WHERE attribute", pred.attr);
      }
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (quoted || tok != "=") {
        return MalformedAt(lex, "expected '=' in WHERE predicate", tok);
      }
      FALCON_ASSIGN_OR_RETURN(pred.value, lex.Next(&quoted));
      if (!quoted && (pred.value.empty() || IsSeparatorToken(pred.value))) {
        return MalformedAt(lex, "expected WHERE value", pred.value);
      }
      query.where.push_back(std::move(pred));

      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (!quoted && tok == ";") {
        saw_semicolon = true;
        break;
      }
      if (tok.empty() && !quoted) break;
      if (quoted || !EqualsIgnoreCase(tok, "AND")) {
        return MalformedAt(lex, "expected AND", tok);
      }
    }
  }

  if (saw_semicolon) {
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (!tok.empty() || quoted) {
      return MalformedAt(lex, "unexpected trailing input after ';'", tok);
    }
  }
  return query;
}

}  // namespace falcon
