#include "relational/table.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace falcon {

Table::Table(std::string name, Schema schema, std::shared_ptr<ValuePool> pool)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(pool ? std::move(pool) : std::make_shared<ValuePool>()),
      columns_(schema_.arity()) {}

void Table::AppendRow(const std::vector<std::string>& values) {
  FALCON_CHECK(values.size() == schema_.arity());
  for (size_t c = 0; c < values.size(); ++c) {
    columns_[c].push_back(pool_->Intern(values[c]));
  }
  ++num_rows_;
}

void Table::AppendRowIds(const std::vector<ValueId>& ids) {
  FALCON_CHECK(ids.size() == schema_.arity());
  for (size_t c = 0; c < ids.size(); ++c) {
    columns_[c].push_back(ids[c]);
  }
  ++num_rows_;
}

void Table::SetCellText(size_t row, size_t col, std::string_view text) {
  set_cell(row, col, pool_->Intern(text));
}

RowSet Table::ScanEquals(size_t col, ValueId v) const {
  RowSet rows(num_rows_);
  const std::vector<ValueId>& column = columns_[col];
  for (size_t r = 0; r < num_rows_; ++r) {
    if (column[r] == v) rows.Set(r);
  }
  return rows;
}

RowSet Table::ScanConjunction(
    const std::vector<std::pair<size_t, ValueId>>& preds) const {
  RowSet rows(num_rows_, /*fill=*/true);
  if (preds.empty()) return rows;
  for (const auto& [col, v] : preds) {
    rows.And(ScanEquals(col, v));
  }
  return rows;
}

size_t Table::DistinctCount(size_t col) const {
  std::unordered_set<ValueId> seen;
  for (ValueId v : columns_[col]) {
    if (v != kNullValueId) seen.insert(v);
  }
  return seen.size();
}

Table Table::Clone() const {
  Table copy(name_, schema_, pool_);
  copy.columns_ = columns_;
  copy.num_rows_ = num_rows_;
  return copy;
}

size_t Table::CountDiffCells(const Table& other) const {
  FALCON_CHECK(num_rows_ == other.num_rows_);
  FALCON_CHECK(num_cols() == other.num_cols());
  size_t diff = 0;
  for (size_t c = 0; c < num_cols(); ++c) {
    const auto& a = columns_[c];
    const auto& b = other.columns_[c];
    for (size_t r = 0; r < num_rows_; ++r) {
      if (a[r] != b[r]) ++diff;
    }
  }
  return diff;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < num_cols(); ++c) {
    if (c > 0) os << " | ";
    os << schema_.attribute(c);
  }
  os << "\n";
  size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_cols(); ++c) {
      if (c > 0) os << " | ";
      os << CellText(r, c);
    }
    os << "\n";
  }
  if (n < num_rows_) {
    os << "... (" << (num_rows_ - n) << " more rows)\n";
  }
  return os.str();
}

}  // namespace falcon
