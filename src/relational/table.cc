#include "relational/table.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace falcon {
namespace {

// Below this many rows the parallel kernels run inline: a 64k-row scan is
// ~256KB of reads, cheaper than waking the pool.
constexpr size_t kParallelRowGrain = size_t{1} << 16;
constexpr size_t kParallelWordGrain = kParallelRowGrain / 64;

}  // namespace

Table::Table(std::string name, Schema schema, std::shared_ptr<ValuePool> pool)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(pool ? std::move(pool) : std::make_shared<ValuePool>()) {
  columns_.reserve(schema_.arity());
  for (size_t c = 0; c < schema_.arity(); ++c) {
    columns_.push_back(std::make_shared<Column>());
  }
}

void Table::DetachColumn(size_t col) {
  columns_[col] = std::make_shared<Column>(*columns_[col]);
}

void Table::AppendRow(const std::vector<std::string>& values) {
  FALCON_CHECK(values.size() == schema_.arity());
  for (size_t c = 0; c < values.size(); ++c) {
    MutableColumn(c).push_back(pool_->Intern(values[c]));
  }
  ++num_rows_;
}

void Table::AppendRow(std::span<const std::string_view> values) {
  FALCON_CHECK(values.size() == schema_.arity());
  for (size_t c = 0; c < values.size(); ++c) {
    MutableColumn(c).push_back(pool_->Intern(values[c]));
  }
  ++num_rows_;
}

void Table::AppendRowIds(const std::vector<ValueId>& ids) {
  FALCON_CHECK(ids.size() == schema_.arity());
  for (size_t c = 0; c < ids.size(); ++c) {
    MutableColumn(c).push_back(ids[c]);
  }
  ++num_rows_;
}

size_t Table::AppendBatch(const std::vector<std::vector<ValueId>>& chunk) {
  FALCON_CHECK(chunk.size() == schema_.arity());
  size_t first_row = num_rows_;
  size_t batch = schema_.arity() == 0 ? 0 : chunk[0].size();
  for (size_t c = 0; c < chunk.size(); ++c) {
    FALCON_CHECK(chunk[c].size() == batch);
    Column& col = MutableColumn(c);
    col.insert(col.end(), chunk[c].begin(), chunk[c].end());
  }
  num_rows_ += batch;
  return first_row;
}

void Table::ReserveRows(size_t total_rows) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    // Reserving writes no elements, but growing shared storage would move
    // data out from under other snapshots — detach first like any mutation.
    MutableColumn(c).reserve(total_rows);
  }
}

void Table::SetCellText(size_t row, size_t col, std::string_view text) {
  set_cell(row, col, pool_->Intern(text));
}

RowSet Table::ScanEquals(size_t col, ValueId v) const {
  RowSet rows(num_rows_);
  const ValueId* column = columns_[col]->data();
  const size_t num_rows = num_rows_;
  // Word-blocked, branch-free: each shard owns a disjoint word range, so the
  // parallel result is bit-identical to the serial one.
  ThreadPool::Global().ParallelFor(
      rows.num_words(), kParallelWordGrain, [&](size_t wb, size_t we) {
        for (size_t w = wb; w < we; ++w) {
          size_t r0 = w * 64;
          size_t r1 = std::min(r0 + 64, num_rows);
          uint64_t word = 0;
          for (size_t r = r0; r < r1; ++r) {
            word |= uint64_t{column[r] == v} << (r - r0);
          }
          rows.SetWord(w, word);
        }
      });
  return rows;
}

std::vector<RowSet> Table::ScanEqualsMulti(
    size_t col, const std::vector<ValueId>& values) const {
  std::vector<RowSet> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) out.emplace_back(num_rows_);
  if (values.empty()) return out;
  const ValueId* column = columns_[col]->data();
  const size_t num_rows = num_rows_;
  const size_t k = values.size();
  ThreadPool::Global().ParallelFor(
      out[0].num_words(), kParallelWordGrain, [&](size_t wb, size_t we) {
        std::vector<uint64_t> words(k);
        for (size_t w = wb; w < we; ++w) {
          size_t r0 = w * 64;
          size_t r1 = std::min(r0 + 64, num_rows);
          std::fill(words.begin(), words.end(), 0);
          for (size_t r = r0; r < r1; ++r) {
            ValueId x = column[r];
            for (size_t i = 0; i < k; ++i) {
              words[i] |= uint64_t{x == values[i]} << (r - r0);
            }
          }
          for (size_t i = 0; i < k; ++i) out[i].SetWord(w, words[i]);
        }
      });
  return out;
}

RowSet Table::ScanConjunction(
    const std::vector<std::pair<size_t, ValueId>>& preds) const {
  RowSet rows(num_rows_, /*fill=*/true);
  if (preds.empty()) return rows;
  for (const auto& [col, v] : preds) {
    rows.And(ScanEquals(col, v));
  }
  return rows;
}

size_t Table::DistinctCount(size_t col) const {
  const std::vector<ValueId>& column = *columns_[col];
  ThreadPool& pool = ThreadPool::Global();
  if (pool.num_threads() == 0 || num_rows_ < kParallelRowGrain) {
    std::unordered_set<ValueId> seen;
    for (ValueId v : column) {
      if (v != kNullValueId) seen.insert(v);
    }
    return seen.size();
  }
  // Per-shard sets unioned under a lock; the union's size is independent of
  // shard boundaries, so the result matches the serial loop exactly.
  std::mutex mu;
  std::unordered_set<ValueId> merged;
  pool.ParallelFor(num_rows_, kParallelRowGrain, [&](size_t begin, size_t end) {
    std::unordered_set<ValueId> seen;
    for (size_t r = begin; r < end; ++r) {
      if (column[r] != kNullValueId) seen.insert(column[r]);
    }
    std::lock_guard<std::mutex> lock(mu);
    merged.insert(seen.begin(), seen.end());
  });
  return merged.size();
}

Table Table::Clone() const {
  Table copy(name_, schema_, pool_);
  copy.columns_ = columns_;  // Shared until either side writes (COW).
  copy.num_rows_ = num_rows_;
  return copy;
}

size_t Table::SharedColumnCount() const {
  size_t shared = 0;
  for (const auto& col : columns_) shared += col.use_count() > 1;
  return shared;
}

size_t Table::CountDiffCells(const Table& other) const {
  FALCON_CHECK(num_rows_ == other.num_rows_);
  FALCON_CHECK(num_cols() == other.num_cols());
  size_t diff = 0;
  for (size_t c = 0; c < num_cols(); ++c) {
    const ValueId* a = columns_[c]->data();
    const ValueId* b = other.columns_[c]->data();
    // Integer partial sums combine associatively, so row-sharding the count
    // is exact. The atomic serializes only once per shard.
    std::atomic<size_t> col_diff{0};
    ThreadPool::Global().ParallelFor(
        num_rows_, kParallelRowGrain, [&](size_t begin, size_t end) {
          size_t local = 0;
          for (size_t r = begin; r < end; ++r) local += a[r] != b[r];
          col_diff.fetch_add(local, std::memory_order_relaxed);
        });
    diff += col_diff.load();
  }
  return diff;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < num_cols(); ++c) {
    if (c > 0) os << " | ";
    os << schema_.attribute(c);
  }
  os << "\n";
  size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_cols(); ++c) {
      if (c > 0) os << " | ";
      os << CellText(r, c);
    }
    os << "\n";
  }
  if (n < num_rows_) {
    os << "... (" << (num_rows_ - n) << " more rows)\n";
  }
  return os.str();
}

}  // namespace falcon
