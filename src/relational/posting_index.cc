#include "relational/posting_index.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <unordered_set>

#include "common/thread_pool.h"

namespace falcon {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PostingIndex::Timer::Timer(double* sink) : sink_(sink), start_ms_(NowMs()) {}

PostingIndex::Timer::~Timer() { *sink_ += NowMs() - start_ms_; }

PostingIndex::Entry& PostingIndex::Insert(size_t col, ValueId v, RowSet rows) {
  lru_.push_front(Key{col, v});
  Entry& e = cache_[col][v];
  e.rows = HybridRowSet(std::move(rows));
  if (options_.compressed) {
    // Density-adaptive: sparse postings compress, dense ones stay word
    // bitmaps. Deterministic in the posting's cardinality only.
    e.rows.Compact(e.rows.Count());
  }
  e.lru_it = lru_.begin();
  e.bytes = EntryBytes(e.rows);
  bytes_ += e.bytes;
  return e;
}

void PostingIndex::EraseEntry(size_t col, ColumnCache::iterator it) {
  lru_.erase(it->second.lru_it);
  bytes_ -= it->second.bytes;
  cache_[col].erase(it);
}

void PostingIndex::ReaccountTouched(std::vector<Entry*>& touched) {
  for (Entry* e : touched) {
    size_t now = EntryBytes(e->rows);
    bytes_ += now;
    bytes_ -= e->bytes;
    e->bytes = now;
    e->dirty = false;
  }
}

PostingStorageStats PostingIndex::StorageStats() const {
  PostingStorageStats s;
  size_t dense_entry = ((table_->num_rows() + 63) / 64) * sizeof(uint64_t);
  for (const ColumnCache& cache : cache_) {
    for (const auto& [v, e] : cache) {
      ++s.entries;
      s.resident_bytes += e.rows.HeapBytes();
      s.dense_bytes += dense_entry;
      if (e.rows.compressed()) {
        auto cs = e.rows.comp().container_stats();
        s.array_containers += cs.arrays;
        s.bitmap_containers += cs.bitmaps;
        s.run_containers += cs.runs;
      }
    }
  }
  return s;
}

const HybridRowSet& PostingIndex::SharedPostings(size_t col, ValueId v) {
  auto& views = shared_views_[col];
  auto it = views.find(v);
  if (it != views.end()) {
    ++stats_.shared_hits;
    return *it->second;
  }
  if (SharedBaseCache::EntryPtr e =
          shared_->FindPosting(options_.compressed, col, v)) {
    ++stats_.shared_hits;
    return *views.emplace(v, std::move(e)).first->second;
  }
  // Miss in both views and cache: scan the (still base-identical) column
  // and publish the result so every later session hits. PublishPosting
  // always returns a servable entry — the winner's on a race, a private
  // wrap when over budget or invalidated mid-scan.
  ++stats_.shared_misses;
  const uint64_t epoch_at_scan = shared_->epoch();
  Timer timer(&stats_.scan_ms);
  Timer base_timer(&stats_.base_scan_ms);
  HybridRowSet rows(table_->ScanEquals(col, v));
  if (options_.compressed) rows.Compact(rows.Count());
  SharedBaseCache::EntryPtr e = shared_->PublishPosting(
      options_.compressed, col, v, std::move(rows), epoch_at_scan);
  return *views.emplace(v, std::move(e)).first->second;
}

const HybridRowSet& PostingIndex::Postings(size_t col, ValueId v) {
  if (SharedEligible(col)) return SharedPostings(col, v);
  ColumnCache& cache = cache_[col];
  auto it = cache.find(v);
  if (it != cache.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
    return it->second.rows;
  }
  ++stats_.misses;
  Timer timer(&stats_.scan_ms);
  return Insert(col, v, table_->ScanEquals(col, v)).rows;
}

void PostingIndex::Warm(size_t col, const std::vector<ValueId>& values) {
  if (SharedEligible(col)) {
    // Per-value shared probes; batch-scan only the union of misses.
    auto& views = shared_views_[col];
    std::vector<ValueId> needed;
    for (ValueId v : values) {
      if (views.count(v) != 0) {
        ++stats_.shared_hits;
        continue;
      }
      if (SharedBaseCache::EntryPtr e =
              shared_->FindPosting(options_.compressed, col, v)) {
        ++stats_.shared_hits;
        views.emplace(v, std::move(e));
        continue;
      }
      needed.push_back(v);
    }
    if (needed.empty()) return;
    stats_.shared_misses += needed.size();
    const uint64_t epoch_at_scan = shared_->epoch();
    Timer timer(&stats_.scan_ms);
    Timer base_timer(&stats_.base_scan_ms);
    std::vector<RowSet> bitmaps = table_->ScanEqualsMulti(col, needed);
    for (size_t i = 0; i < needed.size(); ++i) {
      HybridRowSet rows(std::move(bitmaps[i]));
      if (options_.compressed) rows.Compact(rows.Count());
      views.emplace(needed[i],
                    shared_->PublishPosting(options_.compressed, col,
                                            needed[i], std::move(rows),
                                            epoch_at_scan));
    }
    return;
  }
  std::vector<ValueId> needed;
  for (ValueId v : values) {
    if (cache_[col].find(v) == cache_[col].end()) needed.push_back(v);
  }
  if (needed.empty()) return;
  stats_.misses += needed.size();
  Timer timer(&stats_.scan_ms);
  std::vector<RowSet> bitmaps = table_->ScanEqualsMulti(col, needed);
  for (size_t i = 0; i < needed.size(); ++i) {
    Insert(col, needed[i], std::move(bitmaps[i]));
  }
}

void PostingIndex::PrivatizeColumn(size_t col) {
  if (shared_ == nullptr || col_private_[col] != 0) return;
  col_private_[col] = 1;
  // Promote every pinned shared entry into a private LRU entry. The bits
  // (and representation — entries were built under this plane's Compact
  // policy) are copied verbatim, so the session observes exactly the
  // bitmaps it has been serving, now patchable in place.
  for (auto& [v, entry] : shared_views_[col]) {
    lru_.push_front(Key{col, v});
    Entry& e = cache_[col][v];
    e.rows = *entry;
    e.lru_it = lru_.begin();
    e.bytes = EntryBytes(e.rows);
    bytes_ += e.bytes;
  }
  shared_views_[col].clear();
}

size_t PostingIndex::SharedViewEntries() const {
  size_t n = 0;
  for (const auto& views : shared_views_) n += views.size();
  return n;
}

size_t PostingIndex::SharedViewBytes() const {
  size_t bytes = 0;
  for (const auto& views : shared_views_) {
    for (const auto& [v, entry] : views) bytes += entry->HeapBytes();
  }
  return bytes;
}

void PostingIndex::BuildColumn(size_t col, ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Global();
  // A full build replaces whatever the column held and reflects the
  // *current* table, which may already have diverged from the base
  // snapshot — the column leaves the shared tier.
  InvalidateColumn(col);
  Timer timer(&stats_.scan_ms);
  const ValueId* column = table_->column(col).data();
  const size_t num_rows = table_->num_rows();
  constexpr size_t kRowGrain = size_t{1} << 16;

  // Pass 1: distinct-value discovery. Per-shard sets merge under a lock;
  // the merged set is sorted by ValueId, so the insert order below — and
  // with it the LRU order and byte accounting — never depends on shard
  // boundaries or thread interleaving.
  std::mutex mu;
  std::unordered_set<ValueId> merged;
  tp.ParallelFor(num_rows, kRowGrain, [&](size_t begin, size_t end) {
    std::unordered_set<ValueId> seen;
    for (size_t r = begin; r < end; ++r) seen.insert(column[r]);
    std::lock_guard<std::mutex> lock(mu);
    merged.insert(seen.begin(), seen.end());
  });
  std::vector<ValueId> values(merged.begin(), merged.end());
  std::sort(values.begin(), values.end());
  if (values.empty()) return;

  // Pass 2: bitmap fill. Shards own disjoint 64-row-aligned row ranges, so
  // two shards never touch the same word of any bitmap — each word has
  // exactly one writer and the result is bit-identical to the serial loop.
  // One pass over the column serves every value via a dense slot table.
  ValueId max_value = values.back();
  std::vector<uint32_t> slot(static_cast<size_t>(max_value) + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    slot[values[i]] = static_cast<uint32_t>(i);
  }
  std::vector<RowSet> bitmaps;
  bitmaps.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) bitmaps.emplace_back(num_rows);
  size_t num_words = (num_rows + 63) / 64;
  tp.ParallelFor(num_words, kRowGrain / 64, [&](size_t wb, size_t we) {
    size_t r0 = wb * 64;
    size_t r1 = std::min(we * 64, num_rows);
    for (size_t r = r0; r < r1; ++r) {
      bitmaps[slot[column[r]]].Set(r);
    }
  });
  for (size_t i = 0; i < values.size(); ++i) {
    Insert(col, values[i], std::move(bitmaps[i]));
  }
}

void PostingIndex::BuildAll(ThreadPool* pool) {
  for (size_t c = 0; c < cache_.size(); ++c) BuildColumn(c, pool);
}

void PostingIndex::ApplyAppend(size_t old_rows) {
  size_t new_rows = table_->num_rows();
  FALCON_CHECK(new_rows >= old_rows);
  if (new_rows == old_rows) return;
  Timer timer(&stats_.append_ms);
  stats_.append_rows += new_rows - old_rows;
  // The appended table is no longer the base snapshot: every column leaves
  // the shared tier. Pinned shared entries are promoted into private
  // copies first so sessions keep serving the bitmaps they handed out —
  // then patched below exactly like native private entries.
  if (shared_ != nullptr) {
    for (size_t c = 0; c < cache_.size(); ++c) PrivatizeColumn(c);
  }
  std::vector<Entry*> touched;
  for (size_t c = 0; c < cache_.size(); ++c) {
    ColumnCache& cache = cache_[c];
    if (cache.empty()) continue;
    for (auto& [v, e] : cache) {
      e.rows.Resize(new_rows);
      Touch(&e, touched);
    }
    const ValueId* column = table_->column(c).data();
    // Appended chunks frequently repeat values; memoize the last lookup.
    ValueId memo_value = 0;
    Entry* memo_entry = nullptr;
    bool memo_valid = false;
    for (size_t r = old_rows; r < new_rows; ++r) {
      ValueId v = column[r];
      if (!memo_valid || v != memo_value) {
        memo_value = v;
        memo_entry = FindEntry(cache, v);
        memo_valid = true;
      }
      if (memo_entry != nullptr) memo_entry->rows.Set(r);
    }
  }
  ReaccountTouched(touched);
}

void PostingIndex::ApplyCellDelta(size_t col, size_t row, ValueId old_value,
                                  ValueId new_value) {
  if (old_value == new_value) return;
  Timer timer(&stats_.delta_ms);
  PrivatizeColumn(col);
  ColumnCache& cache = cache_[col];
  if (cache.empty()) return;
  std::vector<Entry*> touched;
  if (Entry* e = Touch(FindEntry(cache, old_value), touched)) {
    e->rows.Clear(row);
  }
  if (Entry* e = Touch(FindEntry(cache, new_value), touched)) {
    e->rows.Set(row);
  }
  ++stats_.delta_rows;
  ReaccountTouched(touched);
}

void PostingIndex::InvalidateColumn(size_t col) {
  // Invalidation implies the column's contents changed (or are about to):
  // it leaves the shared tier for good. No promotion — the point of this
  // path is to rescan on the next probe anyway.
  if (shared_ != nullptr) {
    col_private_[col] = 1;
    shared_views_[col].clear();
  }
  ColumnCache& cache = cache_[col];
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    lru_.erase(it->second.lru_it);
    bytes_ -= it->second.bytes;
  }
  cache.clear();
}

void PostingIndex::InvalidateAll() {
  if (shared_ != nullptr) {
    col_private_.assign(col_private_.size(), 1);
    for (auto& views : shared_views_) views.clear();
  }
  for (auto& m : cache_) m.clear();
  lru_.clear();
  bytes_ = 0;
}

void PostingIndex::Trim() {
  if (options_.byte_budget == 0) return;
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    auto [col, v] = lru_.back();
    EraseEntry(col, cache_[col].find(v));
    ++stats_.evictions;
  }
}

// ---------------------------------------------------------------------------
// IntersectionMemo
// ---------------------------------------------------------------------------

IntersectionMemo::PairKey IntersectionMemo::MakeKey(size_t col_a,
                                                    ValueId val_a,
                                                    size_t col_b,
                                                    ValueId val_b) {
  if (col_b < col_a || (col_b == col_a && val_b < val_a)) {
    std::swap(col_a, col_b);
    std::swap(val_a, val_b);
  }
  return PairKey{col_a, val_a, col_b, val_b};
}

size_t IntersectionMemo::EntryBytes(const HybridRowSet& rows) {
  // Measured bitmap bytes dominate; map/list/key bookkeeping is charged
  // flat so the budget still bites on tiny tables.
  return rows.HeapBytes() + 96;
}

const HybridRowSet* IntersectionMemo::Find(size_t col_a, ValueId val_a,
                                           size_t col_b, ValueId val_b) {
  if (SharedEligible(col_a, col_b)) {
    if (SharedBaseCache::EntryPtr p = shared_->FindIntersection(
            shared_compressed_, col_a, val_a, col_b, val_b)) {
      ++stats_.shared_hits;
      // The pin keeps the entry alive for the caller across invalidation;
      // Find's contract (valid until the next mutating call) holds.
      shared_pin_ = std::move(p);
      return shared_pin_.get();
    }
    ++stats_.shared_misses;
  }
  auto it = map_.find(MakeKey(col_a, val_a, col_b, val_b));
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
  return &it->second.rows;
}

bool IntersectionMemo::Contains(size_t col_a, ValueId val_a, size_t col_b,
                                ValueId val_b) const {
  if (SharedEligible(col_a, col_b) &&
      shared_->ContainsIntersection(shared_compressed_, col_a, val_a, col_b,
                                    val_b)) {
    return true;
  }
  return map_.count(MakeKey(col_a, val_a, col_b, val_b)) != 0;
}

bool IntersectionMemo::TouchProbation(const PairKey& key) {
  auto it = probation_.find(key);
  if (it != probation_.end()) {
    // Recurred — admission earned. Leave the FIFO entry stale; eviction
    // skips keys no longer in the set.
    probation_.erase(it);
    return true;
  }
  probation_.insert(key);
  probation_fifo_.push_back(key);
  while (probation_.size() > kProbationMax && !probation_fifo_.empty()) {
    probation_.erase(probation_fifo_.front());
    probation_fifo_.pop_front();
  }
  // Compact stale FIFO entries (keys promoted out of probation) once the
  // queue outgrows the set by 2x, keeping the deque bounded too.
  if (probation_fifo_.size() > 2 * kProbationMax) {
    std::deque<PairKey> live;
    for (const PairKey& k : probation_fifo_) {
      if (probation_.count(k)) live.push_back(k);
    }
    probation_fifo_ = std::move(live);
  }
  return false;
}

bool IntersectionMemo::RecordTouch(size_t col_a, ValueId val_a, size_t col_b,
                                   ValueId val_b) {
  PairKey key = MakeKey(col_a, val_a, col_b, val_b);
  // Resident in the shared tier: a Find will hit, so materializing once
  // is worth it for the same reason a probationed pair is.
  if (SharedEligible(col_a, col_b) &&
      shared_->ContainsIntersection(shared_compressed_, col_a, val_a, col_b,
                                    val_b)) {
    return true;
  }
  if (map_.count(key)) return true;  // Already resident: a Put refreshes.
  // A positive touch stays on probation until the Put consumes it —
  // RecordTouch callers materialize and Put right after.
  if (probation_.count(key)) return true;
  TouchProbation(key);
  return false;
}

void IntersectionMemo::Put(size_t col_a, ValueId val_a, size_t col_b,
                           ValueId val_b, HybridRowSet rows) {
  PairKey key = MakeKey(col_a, val_a, col_b, val_b);
  if (SharedEligible(col_a, col_b)) {
    // Both predicates are base-pure, so the intersection is too: admitted
    // pairs go to the process-wide tier (stored once, served to every
    // session on this snapshot) instead of the private map. The same
    // second-touch probation gates admission; a budget-rejected publish
    // simply recurs here on the pair's next admission.
    if (shared_->ContainsIntersection(shared_compressed_, col_a, val_a,
                                      col_b, val_b)) {
      return;  // Already resident (this session or a peer published it).
    }
    if (!TouchProbation(key)) {
      ++stats_.first_touch_skips;
      return;
    }
    ++stats_.admitted;
    ++stats_.shared_publishes;
    shared_->PublishIntersection(shared_compressed_, col_a, val_a, col_b,
                                 val_b, std::move(rows), shared_->epoch());
    return;
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (same predicates, possibly newer table state).
    bytes_ -= it->second.bytes;
    it->second.rows = std::move(rows);
    it->second.bytes = EntryBytes(it->second.rows);
    bytes_ += it->second.bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  // Second-touch admission: the first offer of a pair only records it on
  // probation — the bitmap is discarded, so one-shot pairs never consume
  // budget or evict recurring entries.
  if (!TouchProbation(key)) {
    ++stats_.first_touch_skips;
    return;
  }
  ++stats_.admitted;
  lru_.push_front(key);
  MemoEntry& e = map_[key];
  e.rows = std::move(rows);
  e.lru_it = lru_.begin();
  e.bytes = EntryBytes(e.rows);
  bytes_ += e.bytes;
  col_keys_[key.col_a].push_back(key);
  if (key.col_b != key.col_a) col_keys_[key.col_b].push_back(key);
  // Enforce the budget now — callers copy entries out immediately, so no
  // reference outlives this call. The newest entry survives even when it
  // alone exceeds the budget (no point thrashing an empty cache).
  if (byte_budget_ != 0) {
    while (bytes_ > byte_budget_ && lru_.size() > 1) {
      Erase(map_.find(lru_.back()));
      ++stats_.evictions;
    }
  }
}

void IntersectionMemo::Erase(MemoMap::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  map_.erase(it);  // col_keys_ is compacted lazily on the next write walk.
}

bool IntersectionMemo::PatchEntry(MemoMap::iterator it, size_t col,
                                  const RowSet* changed, size_t row,
                                  ValueId new_value) {
  const PairKey& key = it->first;
  // A write *onto* an entry's own bound value may add rows to the
  // predicate; the memo cannot reconstruct which of them also satisfy the
  // other predicate, so the entry is dropped.
  if ((key.col_a == col && key.val_a == new_value) ||
      (key.col_b == col && key.val_b == new_value)) {
    Erase(it);
    return false;
  }
  // Every changed row now fails (col = value≠new_value): remove exactly.
  if (changed != nullptr) {
    it->second.rows.AndNot(*changed);
  } else {
    it->second.rows.Clear(row);
  }
  // The patch may have shrunk (or re-encoded) the stored bitmap.
  bytes_ -= it->second.bytes;
  it->second.bytes = EntryBytes(it->second.rows);
  bytes_ += it->second.bytes;
  return true;
}

template <typename Fn>
void IntersectionMemo::ForEachEntryOfColumn(size_t col, Fn&& fn) {
  auto keys_it = col_keys_.find(col);
  if (keys_it == col_keys_.end()) return;
  std::vector<PairKey>& keys = keys_it->second;
  size_t kept = 0;
  for (PairKey& key : keys) {
    auto it = map_.find(key);
    if (it == map_.end()) continue;  // Evicted; compact away.
    if (fn(it)) keys[kept++] = key;  // fn returns false if it erased.
  }
  keys.resize(kept);
  if (keys.empty()) col_keys_.erase(keys_it);
}

void IntersectionMemo::ApplyWrite(size_t col, const RowSet& changed,
                                  ValueId new_value) {
  // The column leaves the shared tier permanently: its base-pure pairs no
  // longer describe this session's table. They are not patchable (the
  // shared entries are immutable and other sessions still need them), so
  // affected pairs fall back to recomputation and private admission —
  // bit-identical results, recomputed instead of patched.
  if (shared_ != nullptr) dirty_cols_.insert(col);
  ForEachEntryOfColumn(col, [&](MemoMap::iterator it) {
    return PatchEntry(it, col, &changed, 0, new_value);
  });
}

void IntersectionMemo::ApplyCellWrite(size_t col, size_t row,
                                      ValueId new_value) {
  if (shared_ != nullptr) dirty_cols_.insert(col);
  ForEachEntryOfColumn(col, [&](MemoMap::iterator it) {
    return PatchEntry(it, col, nullptr, row, new_value);
  });
}

void IntersectionMemo::ApplyAppend(const Table& table, size_t old_rows) {
  size_t new_rows = table.num_rows();
  FALCON_CHECK(new_rows >= old_rows);
  if (new_rows == old_rows) return;
  // Base-pure shared entries describe the pre-append table; from here on
  // every pair is private. (The shared tier itself is untouched — peer
  // sessions on the original snapshot still need it.)
  if (shared_ != nullptr) {
    for (size_t c = 0; c < table.num_cols(); ++c) dirty_cols_.insert(c);
    shared_pin_.reset();
  }
  for (auto& [key, e] : map_) {
    e.rows.Resize(new_rows);
    const ValueId* col_a = table.column(key.col_a).data();
    const ValueId* col_b = table.column(key.col_b).data();
    for (size_t r = old_rows; r < new_rows; ++r) {
      if (col_a[r] == key.val_a && col_b[r] == key.val_b) e.rows.Set(r);
    }
    bytes_ -= e.bytes;
    e.bytes = EntryBytes(e.rows);
    bytes_ += e.bytes;
  }
}

void IntersectionMemo::InvalidateColumn(size_t col) {
  if (shared_ != nullptr) dirty_cols_.insert(col);
  ForEachEntryOfColumn(col, [&](MemoMap::iterator it) {
    Erase(it);
    return false;
  });
}

void IntersectionMemo::Clear() {
  map_.clear();
  lru_.clear();
  col_keys_.clear();
  probation_.clear();
  probation_fifo_.clear();
  shared_pin_.reset();
  // dirty_cols_ survives: Clear drops cached state, but the table is
  // still whatever the session made it — written columns stay private.
  bytes_ = 0;
}

}  // namespace falcon
