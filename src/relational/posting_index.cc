#include "relational/posting_index.h"

#include <chrono>

namespace falcon {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PostingIndex::Timer::Timer(double* sink) : sink_(sink), start_ms_(NowMs()) {}

PostingIndex::Timer::~Timer() { *sink_ += NowMs() - start_ms_; }

size_t PostingIndex::EntryBytes() const {
  // Bitmap words dominate; the map/list bookkeeping is charged as a flat
  // overhead so tiny tables still converge under a budget.
  return ((table_->num_rows() + 63) / 64) * sizeof(uint64_t) + 64;
}

PostingIndex::Entry& PostingIndex::Insert(size_t col, ValueId v, RowSet rows) {
  lru_.push_front(Key{col, v});
  Entry& e = cache_[col][v];
  e.rows = std::move(rows);
  e.lru_it = lru_.begin();
  bytes_ += EntryBytes();
  return e;
}

void PostingIndex::EraseEntry(size_t col, ColumnCache::iterator it) {
  lru_.erase(it->second.lru_it);
  cache_[col].erase(it);
  bytes_ -= EntryBytes();
}

const RowSet& PostingIndex::Postings(size_t col, ValueId v) {
  ColumnCache& cache = cache_[col];
  auto it = cache.find(v);
  if (it != cache.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
    return it->second.rows;
  }
  ++stats_.misses;
  Timer timer(&stats_.scan_ms);
  return Insert(col, v, table_->ScanEquals(col, v)).rows;
}

void PostingIndex::Warm(size_t col, const std::vector<ValueId>& values) {
  std::vector<ValueId> needed;
  for (ValueId v : values) {
    if (cache_[col].find(v) == cache_[col].end()) needed.push_back(v);
  }
  if (needed.empty()) return;
  stats_.misses += needed.size();
  Timer timer(&stats_.scan_ms);
  std::vector<RowSet> bitmaps = table_->ScanEqualsMulti(col, needed);
  for (size_t i = 0; i < needed.size(); ++i) {
    Insert(col, needed[i], std::move(bitmaps[i]));
  }
}

void PostingIndex::ApplyCellDelta(size_t col, size_t row, ValueId old_value,
                                  ValueId new_value) {
  if (old_value == new_value) return;
  Timer timer(&stats_.delta_ms);
  ColumnCache& cache = cache_[col];
  if (cache.empty()) return;
  if (RowSet* bits = FindBitmap(cache, old_value)) bits->Clear(row);
  if (RowSet* bits = FindBitmap(cache, new_value)) bits->Set(row);
  ++stats_.delta_rows;
}

void PostingIndex::InvalidateColumn(size_t col) {
  ColumnCache& cache = cache_[col];
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    lru_.erase(it->second.lru_it);
    bytes_ -= EntryBytes();
  }
  cache.clear();
}

void PostingIndex::InvalidateAll() {
  for (auto& m : cache_) m.clear();
  lru_.clear();
  bytes_ = 0;
}

void PostingIndex::Trim() {
  if (options_.byte_budget == 0) return;
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    auto [col, v] = lru_.back();
    EraseEntry(col, cache_[col].find(v));
    ++stats_.evictions;
  }
}

}  // namespace falcon
