#include "relational/posting_index.h"

#include <chrono>

namespace falcon {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PostingIndex::Timer::Timer(double* sink) : sink_(sink), start_ms_(NowMs()) {}

PostingIndex::Timer::~Timer() { *sink_ += NowMs() - start_ms_; }

PostingIndex::Entry& PostingIndex::Insert(size_t col, ValueId v, RowSet rows) {
  lru_.push_front(Key{col, v});
  Entry& e = cache_[col][v];
  e.rows = HybridRowSet(std::move(rows));
  if (options_.compressed) {
    // Density-adaptive: sparse postings compress, dense ones stay word
    // bitmaps. Deterministic in the posting's cardinality only.
    e.rows.Compact(e.rows.Count());
  }
  e.lru_it = lru_.begin();
  e.bytes = EntryBytes(e.rows);
  bytes_ += e.bytes;
  return e;
}

void PostingIndex::EraseEntry(size_t col, ColumnCache::iterator it) {
  lru_.erase(it->second.lru_it);
  bytes_ -= it->second.bytes;
  cache_[col].erase(it);
}

void PostingIndex::ReaccountTouched(std::vector<Entry*>& touched) {
  for (Entry* e : touched) {
    size_t now = EntryBytes(e->rows);
    bytes_ += now;
    bytes_ -= e->bytes;
    e->bytes = now;
    e->dirty = false;
  }
}

PostingStorageStats PostingIndex::StorageStats() const {
  PostingStorageStats s;
  size_t dense_entry = ((table_->num_rows() + 63) / 64) * sizeof(uint64_t);
  for (const ColumnCache& cache : cache_) {
    for (const auto& [v, e] : cache) {
      ++s.entries;
      s.resident_bytes += e.rows.HeapBytes();
      s.dense_bytes += dense_entry;
      if (e.rows.compressed()) {
        auto cs = e.rows.comp().container_stats();
        s.array_containers += cs.arrays;
        s.bitmap_containers += cs.bitmaps;
        s.run_containers += cs.runs;
      }
    }
  }
  return s;
}

const HybridRowSet& PostingIndex::Postings(size_t col, ValueId v) {
  ColumnCache& cache = cache_[col];
  auto it = cache.find(v);
  if (it != cache.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
    return it->second.rows;
  }
  ++stats_.misses;
  Timer timer(&stats_.scan_ms);
  return Insert(col, v, table_->ScanEquals(col, v)).rows;
}

void PostingIndex::Warm(size_t col, const std::vector<ValueId>& values) {
  std::vector<ValueId> needed;
  for (ValueId v : values) {
    if (cache_[col].find(v) == cache_[col].end()) needed.push_back(v);
  }
  if (needed.empty()) return;
  stats_.misses += needed.size();
  Timer timer(&stats_.scan_ms);
  std::vector<RowSet> bitmaps = table_->ScanEqualsMulti(col, needed);
  for (size_t i = 0; i < needed.size(); ++i) {
    Insert(col, needed[i], std::move(bitmaps[i]));
  }
}

void PostingIndex::ApplyCellDelta(size_t col, size_t row, ValueId old_value,
                                  ValueId new_value) {
  if (old_value == new_value) return;
  Timer timer(&stats_.delta_ms);
  ColumnCache& cache = cache_[col];
  if (cache.empty()) return;
  std::vector<Entry*> touched;
  if (Entry* e = Touch(FindEntry(cache, old_value), touched)) {
    e->rows.Clear(row);
  }
  if (Entry* e = Touch(FindEntry(cache, new_value), touched)) {
    e->rows.Set(row);
  }
  ++stats_.delta_rows;
  ReaccountTouched(touched);
}

void PostingIndex::InvalidateColumn(size_t col) {
  ColumnCache& cache = cache_[col];
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    lru_.erase(it->second.lru_it);
    bytes_ -= it->second.bytes;
  }
  cache.clear();
}

void PostingIndex::InvalidateAll() {
  for (auto& m : cache_) m.clear();
  lru_.clear();
  bytes_ = 0;
}

void PostingIndex::Trim() {
  if (options_.byte_budget == 0) return;
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    auto [col, v] = lru_.back();
    EraseEntry(col, cache_[col].find(v));
    ++stats_.evictions;
  }
}

// ---------------------------------------------------------------------------
// IntersectionMemo
// ---------------------------------------------------------------------------

IntersectionMemo::PairKey IntersectionMemo::MakeKey(size_t col_a,
                                                    ValueId val_a,
                                                    size_t col_b,
                                                    ValueId val_b) {
  if (col_b < col_a || (col_b == col_a && val_b < val_a)) {
    std::swap(col_a, col_b);
    std::swap(val_a, val_b);
  }
  return PairKey{col_a, val_a, col_b, val_b};
}

size_t IntersectionMemo::EntryBytes(const HybridRowSet& rows) {
  // Measured bitmap bytes dominate; map/list/key bookkeeping is charged
  // flat so the budget still bites on tiny tables.
  return rows.HeapBytes() + 96;
}

const HybridRowSet* IntersectionMemo::Find(size_t col_a, ValueId val_a,
                                           size_t col_b, ValueId val_b) {
  auto it = map_.find(MakeKey(col_a, val_a, col_b, val_b));
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // Touch.
  return &it->second.rows;
}

bool IntersectionMemo::Contains(size_t col_a, ValueId val_a, size_t col_b,
                                ValueId val_b) const {
  return map_.count(MakeKey(col_a, val_a, col_b, val_b)) != 0;
}

bool IntersectionMemo::TouchProbation(const PairKey& key) {
  auto it = probation_.find(key);
  if (it != probation_.end()) {
    // Recurred — admission earned. Leave the FIFO entry stale; eviction
    // skips keys no longer in the set.
    probation_.erase(it);
    return true;
  }
  probation_.insert(key);
  probation_fifo_.push_back(key);
  while (probation_.size() > kProbationMax && !probation_fifo_.empty()) {
    probation_.erase(probation_fifo_.front());
    probation_fifo_.pop_front();
  }
  // Compact stale FIFO entries (keys promoted out of probation) once the
  // queue outgrows the set by 2x, keeping the deque bounded too.
  if (probation_fifo_.size() > 2 * kProbationMax) {
    std::deque<PairKey> live;
    for (const PairKey& k : probation_fifo_) {
      if (probation_.count(k)) live.push_back(k);
    }
    probation_fifo_ = std::move(live);
  }
  return false;
}

bool IntersectionMemo::RecordTouch(size_t col_a, ValueId val_a, size_t col_b,
                                   ValueId val_b) {
  PairKey key = MakeKey(col_a, val_a, col_b, val_b);
  if (map_.count(key)) return true;  // Already resident: a Put refreshes.
  // A positive touch stays on probation until the Put consumes it —
  // RecordTouch callers materialize and Put right after.
  if (probation_.count(key)) return true;
  TouchProbation(key);
  return false;
}

void IntersectionMemo::Put(size_t col_a, ValueId val_a, size_t col_b,
                           ValueId val_b, HybridRowSet rows) {
  PairKey key = MakeKey(col_a, val_a, col_b, val_b);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (same predicates, possibly newer table state).
    bytes_ -= it->second.bytes;
    it->second.rows = std::move(rows);
    it->second.bytes = EntryBytes(it->second.rows);
    bytes_ += it->second.bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  // Second-touch admission: the first offer of a pair only records it on
  // probation — the bitmap is discarded, so one-shot pairs never consume
  // budget or evict recurring entries.
  if (!TouchProbation(key)) {
    ++stats_.first_touch_skips;
    return;
  }
  ++stats_.admitted;
  lru_.push_front(key);
  MemoEntry& e = map_[key];
  e.rows = std::move(rows);
  e.lru_it = lru_.begin();
  e.bytes = EntryBytes(e.rows);
  bytes_ += e.bytes;
  col_keys_[key.col_a].push_back(key);
  if (key.col_b != key.col_a) col_keys_[key.col_b].push_back(key);
  // Enforce the budget now — callers copy entries out immediately, so no
  // reference outlives this call. The newest entry survives even when it
  // alone exceeds the budget (no point thrashing an empty cache).
  if (byte_budget_ != 0) {
    while (bytes_ > byte_budget_ && lru_.size() > 1) {
      Erase(map_.find(lru_.back()));
      ++stats_.evictions;
    }
  }
}

void IntersectionMemo::Erase(MemoMap::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  map_.erase(it);  // col_keys_ is compacted lazily on the next write walk.
}

bool IntersectionMemo::PatchEntry(MemoMap::iterator it, size_t col,
                                  const RowSet* changed, size_t row,
                                  ValueId new_value) {
  const PairKey& key = it->first;
  // A write *onto* an entry's own bound value may add rows to the
  // predicate; the memo cannot reconstruct which of them also satisfy the
  // other predicate, so the entry is dropped.
  if ((key.col_a == col && key.val_a == new_value) ||
      (key.col_b == col && key.val_b == new_value)) {
    Erase(it);
    return false;
  }
  // Every changed row now fails (col = value≠new_value): remove exactly.
  if (changed != nullptr) {
    it->second.rows.AndNot(*changed);
  } else {
    it->second.rows.Clear(row);
  }
  // The patch may have shrunk (or re-encoded) the stored bitmap.
  bytes_ -= it->second.bytes;
  it->second.bytes = EntryBytes(it->second.rows);
  bytes_ += it->second.bytes;
  return true;
}

template <typename Fn>
void IntersectionMemo::ForEachEntryOfColumn(size_t col, Fn&& fn) {
  auto keys_it = col_keys_.find(col);
  if (keys_it == col_keys_.end()) return;
  std::vector<PairKey>& keys = keys_it->second;
  size_t kept = 0;
  for (PairKey& key : keys) {
    auto it = map_.find(key);
    if (it == map_.end()) continue;  // Evicted; compact away.
    if (fn(it)) keys[kept++] = key;  // fn returns false if it erased.
  }
  keys.resize(kept);
  if (keys.empty()) col_keys_.erase(keys_it);
}

void IntersectionMemo::ApplyWrite(size_t col, const RowSet& changed,
                                  ValueId new_value) {
  ForEachEntryOfColumn(col, [&](MemoMap::iterator it) {
    return PatchEntry(it, col, &changed, 0, new_value);
  });
}

void IntersectionMemo::ApplyCellWrite(size_t col, size_t row,
                                      ValueId new_value) {
  ForEachEntryOfColumn(col, [&](MemoMap::iterator it) {
    return PatchEntry(it, col, nullptr, row, new_value);
  });
}

void IntersectionMemo::InvalidateColumn(size_t col) {
  ForEachEntryOfColumn(col, [&](MemoMap::iterator it) {
    Erase(it);
    return false;
  });
}

void IntersectionMemo::Clear() {
  map_.clear();
  lru_.clear();
  col_keys_.clear();
  probation_.clear();
  probation_fifo_.clear();
  bytes_ = 0;
}

}  // namespace falcon
