// In-memory relational table with dictionary-encoded columns. This is the
// storage substrate that stands in for the paper's PostgreSQL instance: it
// supports exactly the operations FALCON needs — equality scans producing
// row bitmaps, point cell updates, and whole-table cloning (clean vs. dirty
// instances share one ValuePool so equal strings compare by id).
//
// Columns are copy-on-write: Clone() shares the column storage of the
// source (O(arity), not O(cells)), and the first write to a shared column
// detaches a private copy. K concurrent sessions snapshotting one base
// instance therefore pay only for the columns they actually repair, and a
// base held as `shared_ptr<const Table>` is never perturbed by its clones.
// Reads of shared columns from many threads are safe; a Table object
// itself (its mutating API) must be confined to one thread at a time.
#ifndef FALCON_RELATIONAL_TABLE_H_
#define FALCON_RELATIONAL_TABLE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/row_set.h"
#include "common/status.h"
#include "relational/schema.h"

namespace falcon {

/// Column-major table of interned values.
class Table {
 public:
  Table() = default;

  /// Creates an empty table. If `pool` is null a fresh pool is allocated.
  Table(std::string name, Schema schema,
        std::shared_ptr<ValuePool> pool = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return schema_.arity(); }
  const std::shared_ptr<ValuePool>& pool() const { return pool_; }

  /// Appends a row of raw strings, interning each value.
  void AppendRow(const std::vector<std::string>& values);

  /// View-based AppendRow: interns straight from the caller's buffers with
  /// no per-row vector<string> materialization. The CSV reader and the
  /// workload generators feed this form.
  void AppendRow(std::span<const std::string_view> values);

  /// Appends a row of already-interned ids.
  void AppendRowIds(const std::vector<ValueId>& ids);

  /// Bulk append of a pre-interned column chunk: `chunk[c]` holds the new
  /// values of column `c`, all the same length. One detach check and one
  /// vector append per column instead of per cell — the chunked-ingest and
  /// streaming-append hot path. Returns the row id of the first new row.
  size_t AppendBatch(const std::vector<std::vector<ValueId>>& chunk);

  /// Pre-sizes every column for `total_rows` rows (bulk-ingest hint).
  void ReserveRows(size_t total_rows);

  ValueId cell(size_t row, size_t col) const { return (*columns_[col])[row]; }
  void set_cell(size_t row, size_t col, ValueId v) {
    MutableColumn(col)[row] = v;
  }

  /// Interns `text` in this table's pool and stores it at (row, col).
  void SetCellText(size_t row, size_t col, std::string_view text);

  /// Decodes the value at (row, col).
  std::string_view CellText(size_t row, size_t col) const {
    return pool_->Get(cell(row, col));
  }

  /// Raw column storage (read-only), used by profiling hot loops.
  const std::vector<ValueId>& column(size_t col) const {
    return *columns_[col];
  }

  /// Interns a value in this table's pool.
  ValueId Intern(std::string_view s) { return pool_->Intern(s); }

  /// Returns the id of `s` if interned anywhere in the shared pool, else
  /// kNullValueId.
  ValueId Lookup(std::string_view s) const { return pool_->Lookup(s); }

  /// Rows where column `col` equals `v` — a posting bitmap, O(num_rows).
  /// Builds whole 64-bit words branch-free and shards across the global
  /// thread pool on large tables.
  RowSet ScanEquals(size_t col, ValueId v) const;

  /// Posting bitmaps for several values of one column in a single pass over
  /// the column (result[i] = ScanEquals(col, values[i])). One memory
  /// traversal amortizes across all requested values, which is what batched
  /// posting-index fills want.
  std::vector<RowSet> ScanEqualsMulti(size_t col,
                                      const std::vector<ValueId>& values) const;

  /// Rows matching a conjunction of (col, value) equality predicates.
  RowSet ScanConjunction(
      const std::vector<std::pair<size_t, ValueId>>& preds) const;

  /// Number of distinct non-null values in `col`.
  size_t DistinctCount(size_t col) const;

  /// Copy-on-write snapshot: O(arity) — column storage is shared with the
  /// source until either side writes. The ValuePool is shared (append-only).
  Table Clone() const;

  /// Number of columns whose storage is currently shared with at least one
  /// other table (snapshot accounting; used by tests and service metrics).
  size_t SharedColumnCount() const;

  /// Number of cells where this table differs from `other` (same shape
  /// required). Used to measure residual dirtiness against the clean table.
  size_t CountDiffCells(const Table& other) const;

  /// Pretty-prints up to `max_rows` rows (debug/examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  using Column = std::vector<ValueId>;

  /// Returns writable storage for `col`, detaching a private copy first if
  /// the column is shared with another snapshot. use_count()==1 proves sole
  /// ownership: any thread that could still read through another reference
  /// must itself hold one, which would keep the count above one.
  Column& MutableColumn(size_t col) {
    if (columns_[col].use_count() != 1) DetachColumn(col);
    return *columns_[col];
  }
  void DetachColumn(size_t col);

  std::string name_;
  Schema schema_;
  std::shared_ptr<ValuePool> pool_;
  std::vector<std::shared_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace falcon

#endif  // FALCON_RELATIONAL_TABLE_H_
