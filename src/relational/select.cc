#include "relational/select.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "common/str_util.h"

namespace falcon {
namespace {

// Token scanner shared in spirit with the SQLU parser but tailored to the
// SELECT fragment (commas, parentheses, '*').
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  StatusOr<std::string> Next(bool* was_quoted) {
    *was_quoted = false;
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return std::string();
    char c = input_[pos_];
    if (c == '\'' || c == '"') {
      *was_quoted = true;
      return Quoted(c);
    }
    if (c == '=' || c == ';' || c == ',' || c == '(' || c == ')' ||
        c == '*') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char d = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(d)) || d == '=' ||
          d == ';' || d == ',' || d == '(' || d == ')' || d == '\'' ||
          d == '"') {
        break;
      }
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<std::string> Peek(bool* was_quoted) {
    size_t saved = pos_;
    auto tok = Next(was_quoted);
    pos_ = saved;
    return tok;
  }

 private:
  StatusOr<std::string> Quoted(char quote) {
    ++pos_;
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == quote) {
        if (quote == '\'' && pos_ < input_.size() && input_[pos_] == '\'') {
          out += '\'';
          ++pos_;
          continue;
        }
        return out;
      }
      out += c;
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  std::string_view input_;
  size_t pos_ = 0;
};

Status Malformed(const std::string& detail) {
  return Status::InvalidArgument("malformed SELECT statement: " + detail);
}

bool LooksNumeric(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

StatusOr<SelectQuery> ParseSelect(std::string_view sql) {
  Lexer lex(sql);
  bool quoted = false;
  SelectQuery query;

  FALCON_ASSIGN_OR_RETURN(std::string tok, lex.Next(&quoted));
  if (!EqualsIgnoreCase(tok, "SELECT")) return Malformed("expected SELECT");

  // Projection list.
  while (true) {
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (tok.empty()) return Malformed("unterminated projection list");
    if (tok == "*") {
      query.star = true;
    } else if (EqualsIgnoreCase(tok, "COUNT")) {
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (tok != "(") return Malformed("expected COUNT(*)");
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (tok != "*") return Malformed("expected COUNT(*)");
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (tok != ")") return Malformed("expected COUNT(*)");
      query.count_star = true;
    } else {
      query.columns.push_back(tok);
    }
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (EqualsIgnoreCase(tok, "FROM")) break;
    if (tok != ",") return Malformed("expected ',' or FROM");
  }

  FALCON_ASSIGN_OR_RETURN(query.table, lex.Next(&quoted));
  if (query.table.empty()) return Malformed("expected table name");

  FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  if (EqualsIgnoreCase(tok, "WHERE")) {
    while (true) {
      Predicate pred;
      FALCON_ASSIGN_OR_RETURN(pred.attr, lex.Next(&quoted));
      if (pred.attr.empty()) return Malformed("expected WHERE attribute");
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (tok != "=") return Malformed("expected '=' in WHERE");
      FALCON_ASSIGN_OR_RETURN(pred.value, lex.Next(&quoted));
      if (pred.value.empty() && !quoted) {
        return Malformed("expected WHERE value");
      }
      query.where.push_back(std::move(pred));
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
      if (!EqualsIgnoreCase(tok, "AND")) break;
    }
  }

  if (EqualsIgnoreCase(tok, "GROUP")) {
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (!EqualsIgnoreCase(tok, "BY")) return Malformed("expected GROUP BY");
    FALCON_ASSIGN_OR_RETURN(std::string col, lex.Next(&quoted));
    if (col.empty()) return Malformed("expected GROUP BY column");
    query.group_by = col;
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  }

  if (EqualsIgnoreCase(tok, "ORDER")) {
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (!EqualsIgnoreCase(tok, "BY")) return Malformed("expected ORDER BY");
    FALCON_ASSIGN_OR_RETURN(std::string col, lex.Next(&quoted));
    if (col.empty()) return Malformed("expected ORDER BY column");
    query.order_by = col;
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    if (EqualsIgnoreCase(tok, "DESC")) {
      query.order_desc = true;
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    } else if (EqualsIgnoreCase(tok, "ASC")) {
      FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
    }
  }

  if (EqualsIgnoreCase(tok, "LIMIT")) {
    FALCON_ASSIGN_OR_RETURN(std::string n, lex.Next(&quoted));
    int64_t v = ParseInt64(n);
    if (v < 0) return Malformed("expected LIMIT count");
    query.limit = static_cast<size_t>(v);
    FALCON_ASSIGN_OR_RETURN(tok, lex.Next(&quoted));
  }

  if (!tok.empty() && tok != ";") return Malformed("unexpected token " + tok);
  if (!query.star && query.columns.empty() && !query.count_star) {
    return Malformed("empty projection");
  }
  return query;
}

StatusOr<Table> ExecuteSelect(const Table& table, const SelectQuery& query) {
  // Resolve the WHERE clause.
  std::vector<std::pair<size_t, ValueId>> preds;
  bool impossible = false;
  for (const Predicate& p : query.where) {
    int col = table.schema().AttrIndex(p.attr);
    if (col < 0) {
      return Status::InvalidArgument("unknown WHERE attribute: " + p.attr);
    }
    ValueId v = table.Lookup(p.value);
    if (v == kNullValueId && !p.value.empty()) impossible = true;
    preds.emplace_back(static_cast<size_t>(col), v);
  }
  RowSet rows = impossible ? RowSet(table.num_rows())
                           : table.ScanConjunction(preds);

  // Resolve projection columns.
  std::vector<size_t> proj;
  if (query.star) {
    for (size_t c = 0; c < table.num_cols(); ++c) proj.push_back(c);
  } else {
    for (const std::string& name : query.columns) {
      int c = table.schema().AttrIndex(name);
      if (c < 0) {
        return Status::InvalidArgument("unknown column: " + name);
      }
      proj.push_back(static_cast<size_t>(c));
    }
  }

  std::vector<std::string> out_names;
  Table result;

  if (query.group_by.has_value()) {
    int gcol_i = table.schema().AttrIndex(*query.group_by);
    if (gcol_i < 0) {
      return Status::InvalidArgument("unknown GROUP BY column: " +
                                     *query.group_by);
    }
    size_t gcol = static_cast<size_t>(gcol_i);
    for (size_t c : proj) {
      if (c != gcol) {
        return Status::InvalidArgument(
            "projection must be the grouped column (plus COUNT(*))");
      }
    }
    // Grouped result: group value [+ count].
    out_names.push_back(*query.group_by);
    if (query.count_star) out_names.push_back("count");
    result = Table("result", Schema(out_names), table.pool());

    std::map<ValueId, size_t> counts;  // Ordered for determinism.
    rows.ForEach([&](size_t r) { ++counts[table.cell(r, gcol)]; });
    for (const auto& [v, n] : counts) {
      std::vector<ValueId> row_ids;
      row_ids.push_back(v);
      if (query.count_star) {
        row_ids.push_back(result.Intern(std::to_string(n)));
      }
      result.AppendRowIds(row_ids);
    }
  } else {
    for (size_t c : proj) out_names.push_back(table.schema().attribute(c));
    if (query.count_star) out_names.push_back("count");
    if (query.count_star && proj.empty()) {
      // Plain COUNT(*).
      result = Table("result", Schema(out_names), table.pool());
      result.AppendRow({std::to_string(rows.Count())});
    } else if (query.count_star) {
      return Status::InvalidArgument(
          "COUNT(*) with plain columns requires GROUP BY");
    } else {
      result = Table("result", Schema(out_names), table.pool());
      std::vector<ValueId> row_ids(proj.size());
      rows.ForEach([&](size_t r) {
        for (size_t i = 0; i < proj.size(); ++i) {
          row_ids[i] = table.cell(r, proj[i]);
        }
        result.AppendRowIds(row_ids);
      });
    }
  }

  // ORDER BY over the materialized result.
  if (query.order_by.has_value()) {
    int ocol_i = result.schema().AttrIndex(*query.order_by);
    if (ocol_i < 0) {
      return Status::InvalidArgument("unknown ORDER BY column: " +
                                     *query.order_by);
    }
    size_t ocol = static_cast<size_t>(ocol_i);
    std::vector<uint32_t> order(result.num_rows());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
    bool numeric = true;
    for (size_t r = 0; r < result.num_rows() && numeric; ++r) {
      numeric = LooksNumeric(result.CellText(r, ocol));
    }
    // Precompute sort keys once (the comparator used to re-parse integers
    // on every comparison). DESC swaps the operands, which preserves
    // stability exactly like the former `>` comparator.
    std::vector<int64_t> num_keys;
    std::vector<std::string_view> text_keys;
    if (numeric) {
      num_keys.resize(result.num_rows());
      for (size_t r = 0; r < result.num_rows(); ++r) {
        num_keys[r] = ParseInt64(result.CellText(r, ocol));
      }
    } else {
      text_keys.resize(result.num_rows());
      for (size_t r = 0; r < result.num_rows(); ++r) {
        text_keys[r] = result.CellText(r, ocol);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (query.order_desc) std::swap(a, b);
      return numeric ? num_keys[a] < num_keys[b] : text_keys[a] < text_keys[b];
    });
    Table sorted("result", result.schema(), result.pool());
    std::vector<ValueId> ids(result.num_cols());
    for (uint32_t r : order) {
      for (size_t c = 0; c < result.num_cols(); ++c) {
        ids[c] = result.cell(r, c);
      }
      sorted.AppendRowIds(ids);
    }
    result = std::move(sorted);
  }

  // LIMIT.
  if (query.limit.has_value() && result.num_rows() > *query.limit) {
    Table limited("result", result.schema(), result.pool());
    std::vector<ValueId> ids(result.num_cols());
    for (size_t r = 0; r < *query.limit; ++r) {
      for (size_t c = 0; c < result.num_cols(); ++c) {
        ids[c] = result.cell(r, c);
      }
      limited.AppendRowIds(ids);
    }
    result = std::move(limited);
  }
  return result;
}

StatusOr<Table> RunSelect(const Table& table, std::string_view sql) {
  FALCON_ASSIGN_OR_RETURN(SelectQuery query, ParseSelect(sql));
  return ExecuteSelect(table, query);
}

}  // namespace falcon
