#include "relational/sqlu.h"

#include <algorithm>

#include "common/str_util.h"

namespace falcon {

void SqluQuery::Canonicalize() {
  std::sort(where.begin(), where.end(),
            [](const Predicate& a, const Predicate& b) {
              return a.attr < b.attr;
            });
}

std::string SqluQuery::ToSql() const {
  std::string sql = "UPDATE " + table + " SET " + set_attr + " = " +
                    SqlQuote(set_value);
  if (!where.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += where[i].attr + " = " + SqlQuote(where[i].value);
    }
  }
  sql += ";";
  return sql;
}

bool SqluQuery::operator==(const SqluQuery& other) const {
  SqluQuery a = *this;
  SqluQuery b = other;
  a.Canonicalize();
  b.Canonicalize();
  return a.table == b.table && a.set_attr == b.set_attr &&
         a.set_value == b.set_value && a.where == b.where;
}

bool Contains(const SqluQuery& general, const SqluQuery& specific) {
  if (general.set_attr != specific.set_attr ||
      general.set_value != specific.set_value) {
    return false;
  }
  for (const Predicate& p : general.where) {
    if (std::find(specific.where.begin(), specific.where.end(), p) ==
        specific.where.end()) {
      return false;
    }
  }
  return true;
}

namespace {

// Resolves the query against the table: SET column index, SET value id and
// (column, value-id) pairs for the WHERE clause. A WHERE constant that was
// never interned matches no rows; we signal that through `impossible`.
struct ResolvedQuery {
  size_t set_col = 0;
  ValueId set_value = kNullValueId;
  std::vector<std::pair<size_t, ValueId>> preds;
  bool impossible = false;
};

StatusOr<ResolvedQuery> Resolve(const Table& table, const SqluQuery& query) {
  ResolvedQuery out;
  int set_col = table.schema().AttrIndex(query.set_attr);
  if (set_col < 0) {
    return Status::InvalidArgument("unknown SET attribute: " + query.set_attr);
  }
  out.set_col = static_cast<size_t>(set_col);
  out.set_value = table.Lookup(query.set_value);
  for (const Predicate& p : query.where) {
    int col = table.schema().AttrIndex(p.attr);
    if (col < 0) {
      return Status::InvalidArgument("unknown WHERE attribute: " + p.attr);
    }
    ValueId v = table.Lookup(p.value);
    if (v == kNullValueId && !p.value.empty()) {
      out.impossible = true;  // Constant not present anywhere in the pool.
    }
    out.preds.emplace_back(static_cast<size_t>(col), v);
  }
  return out;
}

}  // namespace

StatusOr<RowSet> AffectedRows(const Table& table, const SqluQuery& query) {
  FALCON_ASSIGN_OR_RETURN(ResolvedQuery rq, Resolve(table, query));
  if (rq.impossible) return RowSet(table.num_rows());
  RowSet rows = table.ScanConjunction(rq.preds);
  // Exclude rows already holding the SET value: the UPDATE is a no-op there.
  if (rq.set_value != kNullValueId || query.set_value.empty()) {
    RowSet already = table.ScanEquals(rq.set_col, rq.set_value);
    rows.AndNot(already);
  }
  return rows;
}

StatusOr<size_t> ApplyQuery(Table& table, const SqluQuery& query) {
  FALCON_ASSIGN_OR_RETURN(RowSet rows, AffectedRows(table, query));
  ValueId new_value = table.Intern(query.set_value);
  int set_col = table.schema().AttrIndex(query.set_attr);
  size_t changed = 0;
  rows.ForEach([&](size_t r) {
    table.set_cell(r, static_cast<size_t>(set_col), new_value);
    ++changed;
  });
  return changed;
}

}  // namespace falcon
