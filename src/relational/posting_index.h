// PostingIndex: lazily built, cached posting bitmaps for (column = value)
// predicates. Lattice construction scans each bound predicate once per
// session; across a cleaning run the same constants recur (group values,
// frequent categories), so caching them amortizes the scans.
//
// Two maintenance modes:
//  - delta (default): callers that know exactly which rows changed and the
//    old/new value report them via ApplyDelta/ApplyCellDelta; the cache
//    stays exact across an entire cleaning session — the bitmaps are
//    updated in place instead of being rebuilt by full-table rescans.
//  - invalidate (legacy): InvalidateColumn drops a column's entries after
//    any write to it; the next Postings call rescans.
//
// Memory is bounded by an optional byte budget with LRU eviction. Eviction
// is deferred to explicit Trim() calls so that references returned by
// Postings stay valid while a lattice build holds them; the session driver
// trims between lattice episodes.
//
// Two-tier operation (shared base cache)
//   When PostingIndexOptions::shared names a SharedBaseCache whose
//   snapshot id matches base_snapshot_id, the index becomes two-tier:
//   columns the session has never mutated probe the process-wide shared
//   tier first (pinning hits in a per-column view map so returned
//   references obey the same lifetime contract as private entries) and
//   publish their scans back for other sessions. The first write to a
//   column *privatizes* it — pinned shared entries are promoted into
//   private LRU entries and the existing delta machinery patches those
//   session-local copies from then on. The shared tier therefore only
//   ever holds base-pure bitmaps, and a session's view of a mutated
//   column is indistinguishable from the single-tier behaviour.
#ifndef FALCON_RELATIONAL_POSTING_INDEX_H_
#define FALCON_RELATIONAL_POSTING_INDEX_H_

#include <deque>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hybrid_row_set.h"
#include "common/row_set.h"
#include "core/shared_base_cache.h"
#include "relational/table.h"

namespace falcon {

class ThreadPool;

struct PostingIndexOptions {
  /// Maintain cached bitmaps in place on cell updates (ApplyDelta) instead
  /// of requiring column invalidation.
  bool delta_maintenance = true;
  /// Cache size cap in bytes (0 = unbounded). Enforced by Trim(), which
  /// evicts least-recently-used entries.
  size_t byte_budget = 0;
  /// Store postings in the density-adaptive compressed representation
  /// (Roaring-style containers). Bit-identical to dense mode; sparse
  /// postings cost bytes proportional to their cardinality instead of the
  /// table size, so far more of the posting universe fits in the budget.
  bool compressed = false;
  /// Optional process-wide base tier (non-owning; must outlive the index).
  /// Only attached when its snapshot id equals base_snapshot_id below —
  /// a mismatch silently degrades to single-tier operation.
  SharedBaseCache* shared = nullptr;
  /// Generation id of the base snapshot the indexed table was cloned
  /// from (CleaningWorkload::snapshot_id). 0 = never attach.
  uint64_t base_snapshot_id = 0;
};

/// Counters surfaced through SessionMetrics and the benches.
struct PostingIndexStats {
  size_t hits = 0;        ///< Postings served from the private cache.
  size_t misses = 0;      ///< Private-tier probes that scanned the table.
  size_t delta_rows = 0;  ///< Row-bit updates applied by delta maintenance.
  size_t evictions = 0;   ///< Entries dropped by Trim().
  double scan_ms = 0.0;   ///< Time spent in table scans (fills).
  double delta_ms = 0.0;  ///< Time spent applying deltas.
  /// Two-tier counters: probes of clean columns served by the shared base
  /// tier vs. probes that missed it and scanned (then published).
  size_t shared_hits = 0;
  size_t shared_misses = 0;
  /// Portion of scan_ms spent filling base (shared-eligible) postings —
  /// the build cost the shared tier amortizes across sessions. Private
  /// re-scans after writes are excluded: every session pays those alike.
  double base_scan_ms = 0.0;
  /// Streaming-append maintenance: rows folded in by ApplyAppend and the
  /// time spent extending cached bitmaps for them.
  size_t append_rows = 0;
  double append_ms = 0.0;
};

/// Exact resident-storage breakdown of the posting cache (surfaced through
/// SessionMetrics and the benches). `resident_bytes` is the measured heap
/// footprint of the stored bitmaps — in compressed mode this is what the
/// LRU budget accounts, replacing the old dense n/8-per-entry estimate.
struct PostingStorageStats {
  size_t entries = 0;         ///< Cached (column, value) bitmaps.
  size_t resident_bytes = 0;  ///< Exact heap bytes of the stored bitmaps.
  size_t dense_bytes = 0;     ///< What the same entries would cost dense.
  size_t array_containers = 0;
  size_t bitmap_containers = 0;
  size_t run_containers = 0;
  /// Dense-to-resident ratio (> 1 means compression is winning).
  double compression() const {
    return resident_bytes == 0
               ? 1.0
               : static_cast<double>(dense_bytes) /
                     static_cast<double>(resident_bytes);
  }
};

class PostingIndex {
 public:
  /// `table` must outlive the index.
  explicit PostingIndex(const Table* table, PostingIndexOptions options = {})
      : table_(table), options_(options), cache_(table->num_cols()) {
    if (options_.shared != nullptr && options_.base_snapshot_id != 0 &&
        options_.shared->snapshot_id() == options_.base_snapshot_id &&
        options_.shared->num_cols() == table->num_cols()) {
      shared_ = options_.shared;
      col_private_.assign(table->num_cols(), 0);
      shared_views_.resize(table->num_cols());
    }
  }

  PostingIndex(const PostingIndex&) = delete;
  PostingIndex& operator=(const PostingIndex&) = delete;

  bool delta_maintenance() const { return options_.delta_maintenance; }

  /// Rows where `col` equals `v`. First call scans the column; later calls
  /// are cache hits until the entry is invalidated or evicted. The returned
  /// reference stays valid until InvalidateColumn/InvalidateAll/Trim.
  const HybridRowSet& Postings(size_t col, ValueId v);

  /// Batch fill: caches postings for every value of `col` not yet cached in
  /// a single pass over the column (Table::ScanEqualsMulti).
  void Warm(size_t col, const std::vector<ValueId>& values);

  /// Full deterministic build of `col`: caches a posting for every distinct
  /// value present (including NULL), sharded across `pool` (the global pool
  /// when null). Bit-identical to the serial build at any thread count —
  /// shards own disjoint 64-row-aligned ranges, so each bitmap word has
  /// exactly one writer, and entries are inserted in ascending ValueId
  /// order regardless of which shard discovered them. Existing entries of
  /// the column are dropped first; the column leaves the shared tier.
  /// Intended for bounded-domain (lattice-relevant) columns — a unique
  /// column would materialize one bitmap per row.
  void BuildColumn(size_t col, ThreadPool* pool = nullptr);

  /// BuildColumn over every column of the table.
  void BuildAll(ThreadPool* pool = nullptr);

  /// Streaming-append maintenance: the table grew from `old_rows` to its
  /// current num_rows() by appending rows (no existing cell changed).
  /// Every cached bitmap is resized to the new universe and the new rows'
  /// bits are folded into their values' postings — O(batch + entries), not
  /// O(table). Appended rows diverge from the base snapshot, so every
  /// column leaves the shared tier (pinned shared entries are promoted
  /// first and then patched like private ones). Exact in both maintenance
  /// modes: growth is a pure extension, never an in-place rewrite.
  void ApplyAppend(size_t old_rows);

  /// Delta maintenance: the caller wrote `new_value` into every row of
  /// `rows` in `col`; `old_value(row)` must return the value each row held
  /// *before* the write (so call this before, or with captured
  /// before-images after, the actual writes). Cached bitmaps are patched in
  /// place: the old value's bitmap loses the row, the new value's gains it.
  /// Uncached values stay uncached.
  template <typename Fn>
  void ApplyDelta(size_t col, const RowSet& rows, Fn&& old_value,
                  ValueId new_value) {
    Timer timer(&stats_.delta_ms);
    // The column is being written: it can no longer be served from the
    // shared base tier. Promote pinned shared entries into private copies
    // *before* the empty-cache early-out — even an uncached column must be
    // marked private, or a later probe would resurrect the base bitmap.
    PrivatizeColumn(col);
    ColumnCache& cache = cache_[col];
    if (cache.empty()) return;
    std::vector<Entry*> touched;
    Entry* new_entry = Touch(FindEntry(cache, new_value), touched);
    // Runs of rows frequently share the old value; memoize the last lookup.
    ValueId memo_value = new_value;
    Entry* memo_entry = nullptr;
    rows.ForEach([&](size_t r) {
      ValueId old = old_value(r);
      if (old == new_value) return;
      if (old != memo_value) {
        memo_value = old;
        memo_entry = Touch(FindEntry(cache, old), touched);
      }
      if (memo_entry != nullptr) memo_entry->rows.Clear(r);
      if (new_entry != nullptr) new_entry->rows.Set(r);
      ++stats_.delta_rows;
    });
    ReaccountTouched(touched);
  }

  /// Single-cell delta (the session's manual-fix path).
  void ApplyCellDelta(size_t col, size_t row, ValueId old_value,
                      ValueId new_value);

  /// Drops cached postings of `col` (legacy invalidate-and-rescan mode).
  void InvalidateColumn(size_t col);

  void InvalidateAll();

  /// Enforces the byte budget by evicting LRU entries. Invalidates
  /// references previously returned by Postings; call between episodes.
  void Trim();

  size_t cached_entries() const { return lru_.size(); }
  size_t cached_bytes() const { return bytes_; }
  const PostingIndexStats& stats() const { return stats_; }
  size_t hits() const { return stats_.hits; }
  size_t misses() const { return stats_.misses; }

  /// Exact resident-storage breakdown (entries, measured bytes, dense
  /// equivalent, per-container tallies). Walks the cache; O(entries).
  /// Counts the *private* tier only — shared-tier bytes live once in the
  /// process-wide cache and are reported separately (SharedViewBytes),
  /// so N sessions never multiply-count one resident bitmap.
  PostingStorageStats StorageStats() const;

  /// Shared-tier pins held by this index: entries this session has probed
  /// out of the shared base cache (each is a refcount on a bitmap resident
  /// once process-wide).
  size_t SharedViewEntries() const;
  /// Heap bytes of those pinned bitmaps, as visible to this session.
  size_t SharedViewBytes() const;
  bool shared_attached() const { return shared_ != nullptr; }

 private:
  using Key = std::pair<size_t, ValueId>;  // (column, value).
  struct Entry {
    HybridRowSet rows;
    /// Exact accounted bytes of `rows` at last (re-)accounting, including
    /// the flat per-entry bookkeeping charge.
    size_t bytes = 0;
    bool dirty = false;  ///< In the current delta's touched list.
    std::list<Key>::iterator lru_it;
  };
  using ColumnCache = std::unordered_map<ValueId, Entry>;

  // Adds elapsed wall time to *sink on destruction.
  class Timer {
   public:
    explicit Timer(double* sink);
    ~Timer();

   private:
    double* sink_;
    double start_ms_;
  };

  Entry* FindEntry(ColumnCache& cache, ValueId v) {
    auto it = cache.find(v);
    return it == cache.end() ? nullptr : &it->second;
  }

  /// Adds a to-be-mutated entry to the touched list (once) so its byte
  /// accounting can be refreshed after the patch.
  static Entry* Touch(Entry* e, std::vector<Entry*>& touched) {
    if (e != nullptr && !e->dirty) {
      e->dirty = true;
      touched.push_back(e);
    }
    return e;
  }
  /// Re-measures every touched entry and folds the delta into bytes_.
  void ReaccountTouched(std::vector<Entry*>& touched);

  /// Exact accounted bytes for a stored bitmap (measured heap + flat
  /// bookkeeping overhead so tiny tables still converge under a budget).
  static size_t EntryBytes(const HybridRowSet& rows) {
    return rows.HeapBytes() + 64;
  }
  Entry& Insert(size_t col, ValueId v, RowSet rows);
  void EraseEntry(size_t col, ColumnCache::iterator it);

  /// True while `col` may be served from the shared base tier (attached
  /// and never mutated by this session).
  bool SharedEligible(size_t col) const {
    return shared_ != nullptr && col_private_[col] == 0;
  }
  /// Marks `col` session-private: pinned shared entries are promoted into
  /// private LRU entries (bit-for-bit copies, representation preserved)
  /// so delta maintenance patches session-local state from here on.
  void PrivatizeColumn(size_t col);
  /// Shared-tier serving path of Postings() for an eligible column.
  const HybridRowSet& SharedPostings(size_t col, ValueId v);

  const Table* table_;
  PostingIndexOptions options_;
  std::vector<ColumnCache> cache_;
  std::list<Key> lru_;  // Front = most recently used.
  size_t bytes_ = 0;
  PostingIndexStats stats_;

  /// Two-tier state (set iff the options named a matching shared cache).
  SharedBaseCache* shared_ = nullptr;
  std::vector<uint8_t> col_private_;  ///< 1 = column left the shared tier.
  /// Per-column pins of shared entries this session has probed; they keep
  /// references returned by Postings valid under the standard contract
  /// (until InvalidateColumn/InvalidateAll — Trim only touches the
  /// private tier) and survive cache invalidation (RCU grace).
  std::vector<std::unordered_map<ValueId, SharedBaseCache::EntryPtr>>
      shared_views_;
};

/// Counters for the pairwise-intersection memo below.
struct IntersectionMemoStats {
  size_t hits = 0;       ///< Find calls served from the private cache.
  size_t misses = 0;     ///< Find calls that came up empty everywhere.
  size_t evictions = 0;  ///< Entries dropped to satisfy the byte budget.
  size_t admitted = 0;   ///< Puts that stored a bitmap (second touch).
  size_t first_touch_skips = 0;  ///< Puts deferred to probation (first touch).
  /// Two-tier counters: Finds served by the shared base tier, eligible
  /// probes that missed it, and admitted pairs published there instead of
  /// into the private map.
  size_t shared_hits = 0;
  size_t shared_misses = 0;
  size_t shared_publishes = 0;
};

/// IntersectionMemo: byte-budgeted cache of pairwise predicate
/// intersections (colA = vA) ∧ (colB = vB), keyed on the canonically
/// ordered predicate pair. It lives alongside the PostingIndex and serves
/// the lazy lattice's two-attribute nodes: successive repairs in a session
/// rebuild lattices over recurring predicate pairs (the repaired tuple's
/// bindings repeat across episodes), so the AND that produces a
/// two-predicate view is worth remembering across lattices.
///
/// Entries are *pure* — they depend only on current table contents, never
/// on a particular repair's bottom node — which is what makes reuse across
/// lattices sound. To stay exact across writes, every table mutation must
/// be reported through ApplyWrite/ApplyCellWrite (exact bitmap patches:
/// rows leaving a predicate are AndNot-ed out; a write *onto* an entry's
/// own value conservatively drops the entry since joining rows are
/// unknown) or InvalidateColumn (retractions / unknown deltas). Tables
/// mutated behind the memo's back make it stale — sessions own one memo
/// per dirty table and route all writes through it.
///
/// The byte budget is enforced at insertion time by LRU eviction (the
/// lattice copies an entry into its own state immediately, so no caller
/// ever holds a reference across a Put). A single oversized entry is
/// allowed to overflow the budget rather than thrash.
///
/// Admission is second-touch: the first Put of a pair only records the
/// key in a bounded probation set (no bitmap stored); a Put — or a
/// RecordTouch from the count-only path — for a pair already on
/// probation admits it. One-shot pairs therefore never consume budget or
/// evict recurring entries, which is what keeps the hit rate meaningful
/// under churny workloads where most pairs occur exactly once.
class IntersectionMemo {
 public:
  /// `byte_budget` caps resident bitmap bytes (0 = unbounded).
  explicit IntersectionMemo(size_t byte_budget = 0)
      : byte_budget_(byte_budget) {}

  IntersectionMemo(const IntersectionMemo&) = delete;
  IntersectionMemo& operator=(const IntersectionMemo&) = delete;

  /// Attaches the process-wide base tier (non-owning; must outlive the
  /// memo): pairs whose columns this session has never written probe it
  /// first and publish their admitted intersections there, in the
  /// `compressed` plane. Base-tier entries are pure (pred ∧ pred over the
  /// immutable base), so any session on the same snapshot may reuse them.
  /// A column's first write (ApplyWrite/ApplyCellWrite/InvalidateColumn)
  /// retires every pair mentioning it to the private tier.
  void AttachShared(SharedBaseCache* shared, bool compressed) {
    shared_ = shared;
    shared_compressed_ = compressed;
  }

  /// Cached intersection of (col_a = val_a) ∧ (col_b = val_b), or nullptr.
  /// The reference stays valid only until the next Put/Apply*/Invalidate
  /// call — copy out of it before touching the memo again.
  const HybridRowSet* Find(size_t col_a, ValueId val_a, size_t col_b,
                           ValueId val_b);

  /// Offers `rows` as the intersection of the two predicates (in whichever
  /// representation the caller hands over — the lattice compacts sparse
  /// intersections before the Put). First touch of a pair only records it
  /// on probation and discards the bitmap; a recurring pair is admitted,
  /// with the byte budget enforced by LRU eviction. A Put for a resident
  /// pair refreshes the entry in place.
  void Put(size_t col_a, ValueId val_a, size_t col_b, ValueId val_b,
           HybridRowSet rows);

  /// True iff the pair is resident (no stats or LRU side effects) —
  /// lattice batch scheduling uses this to skip materializing ancestors a
  /// memo hit will make unnecessary.
  bool Contains(size_t col_a, ValueId val_a, size_t col_b,
                ValueId val_b) const;

  /// Records one occurrence of the pair for admission purposes without
  /// storing anything. Returns true when the pair has now been seen
  /// before (it is on probation), i.e. a Put would admit it — the
  /// count-only lattice path uses this to decide whether materializing
  /// the intersection once is worth it.
  bool RecordTouch(size_t col_a, ValueId val_a, size_t col_b, ValueId val_b);

  /// The caller wrote `new_value` into every row of `changed` in `col`.
  /// Entries over (col = v), v ≠ new_value lose the changed rows exactly;
  /// entries over (col = new_value) are dropped (rows may have joined).
  void ApplyWrite(size_t col, const RowSet& changed, ValueId new_value);

  /// Single-cell variant (the session's manual-fix path).
  void ApplyCellWrite(size_t col, size_t row, ValueId new_value);

  /// Streaming-append maintenance: `table` grew from `old_rows` rows by
  /// appending (no existing cell changed). Every resident entry is resized
  /// and each new row is tested against the entry's two predicates —
  /// O(batch × entries), exact. All columns leave the shared tier: the
  /// appended table no longer matches the base snapshot.
  void ApplyAppend(const Table& table, size_t old_rows);

  /// Drops every entry mentioning `col` (retractions, unknown deltas).
  void InvalidateColumn(size_t col);

  void Clear();

  size_t cached_entries() const { return map_.size(); }
  size_t cached_bytes() const { return bytes_; }
  const IntersectionMemoStats& stats() const { return stats_; }

 private:
  /// Canonically ordered predicate pair: (col_a, val_a) ≤ (col_b, val_b).
  struct PairKey {
    size_t col_a;
    ValueId val_a;
    size_t col_b;
    ValueId val_b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t h = 1469598103934665603ull;
      for (uint64_t part : {static_cast<uint64_t>(k.col_a),
                            static_cast<uint64_t>(k.val_a),
                            static_cast<uint64_t>(k.col_b),
                            static_cast<uint64_t>(k.val_b)}) {
        h ^= part;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };
  struct MemoEntry {
    HybridRowSet rows;
    size_t bytes = 0;  ///< Exact accounted bytes at last (re-)accounting.
    std::list<PairKey>::iterator lru_it;
  };
  using MemoMap = std::unordered_map<PairKey, MemoEntry, PairKeyHash>;

  static PairKey MakeKey(size_t col_a, ValueId val_a, size_t col_b,
                         ValueId val_b);
  static size_t EntryBytes(const HybridRowSet& rows);
  void Erase(MemoMap::iterator it);
  /// Patches one entry for a write of `new_value` into `col`; the changed
  /// rows are reported either as a bitmap or a single row id. Returns
  /// false when the entry had to be dropped.
  bool PatchEntry(MemoMap::iterator it, size_t col, const RowSet* changed,
                  size_t row, ValueId new_value);
  template <typename Fn>
  void ForEachEntryOfColumn(size_t col, Fn&& fn);

  /// Bound on the probation set: a pathological stream of one-shot pairs
  /// ages out the oldest probation keys FIFO instead of growing without
  /// limit. Deterministic — depends only on the call sequence.
  static constexpr size_t kProbationMax = 4096;

  /// Inserts `key` into probation (FIFO-evicting past the bound), or
  /// returns true if it was already there — i.e. the pair recurred.
  bool TouchProbation(const PairKey& key);

  /// True while both columns are clean (shared tier attached and neither
  /// has been written through this memo).
  bool SharedEligible(size_t col_a, size_t col_b) const {
    return shared_ != nullptr && dirty_cols_.count(col_a) == 0 &&
           dirty_cols_.count(col_b) == 0;
  }

  SharedBaseCache* shared_ = nullptr;
  bool shared_compressed_ = false;
  /// Columns this session has written; pairs touching them are private.
  std::unordered_set<size_t> dirty_cols_;
  /// Pin keeping the last shared Find result alive for the caller
  /// (Find's contract: valid until the next mutating call).
  SharedBaseCache::EntryPtr shared_pin_;

  size_t byte_budget_;
  MemoMap map_;
  std::list<PairKey> lru_;  // Front = most recently used.
  std::unordered_set<PairKey, PairKeyHash> probation_;
  std::deque<PairKey> probation_fifo_;  // Oldest first.
  /// Per-column key lists so writes only visit entries mentioning the
  /// written column; stale keys (evicted entries) are compacted lazily.
  std::unordered_map<size_t, std::vector<PairKey>> col_keys_;
  size_t bytes_ = 0;
  IntersectionMemoStats stats_;
};

}  // namespace falcon

#endif  // FALCON_RELATIONAL_POSTING_INDEX_H_
