// PostingIndex: lazily built, cached posting bitmaps for (column = value)
// predicates. Lattice construction scans each bound predicate once per
// session; across a cleaning run the same constants recur (group values,
// frequent categories), so caching them amortizes the scans. Updates to a
// column invalidate its cached entries.
#ifndef FALCON_RELATIONAL_POSTING_INDEX_H_
#define FALCON_RELATIONAL_POSTING_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/row_set.h"
#include "relational/table.h"

namespace falcon {

class PostingIndex {
 public:
  /// `table` must outlive the index.
  explicit PostingIndex(const Table* table)
      : table_(table), cache_(table->num_cols()) {}

  PostingIndex(const PostingIndex&) = delete;
  PostingIndex& operator=(const PostingIndex&) = delete;

  /// Rows where `col` equals `v`. First call scans the column; later calls
  /// are cache hits until the column is invalidated.
  const RowSet& Postings(size_t col, ValueId v) {
    auto [it, inserted] = cache_[col].try_emplace(v);
    if (inserted) {
      it->second = table_->ScanEquals(col, v);
      ++misses_;
    } else {
      ++hits_;
    }
    return it->second;
  }

  /// Drops cached postings of `col` (call after updating any cell in it).
  void InvalidateColumn(size_t col) { cache_[col].clear(); }

  void InvalidateAll() {
    for (auto& m : cache_) m.clear();
  }

  size_t cached_entries() const {
    size_t n = 0;
    for (const auto& m : cache_) n += m.size();
    return n;
  }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  const Table* table_;
  std::vector<std::unordered_map<ValueId, RowSet>> cache_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace falcon

#endif  // FALCON_RELATIONAL_POSTING_INDEX_H_
