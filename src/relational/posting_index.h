// PostingIndex: lazily built, cached posting bitmaps for (column = value)
// predicates. Lattice construction scans each bound predicate once per
// session; across a cleaning run the same constants recur (group values,
// frequent categories), so caching them amortizes the scans.
//
// Two maintenance modes:
//  - delta (default): callers that know exactly which rows changed and the
//    old/new value report them via ApplyDelta/ApplyCellDelta; the cache
//    stays exact across an entire cleaning session — the bitmaps are
//    updated in place instead of being rebuilt by full-table rescans.
//  - invalidate (legacy): InvalidateColumn drops a column's entries after
//    any write to it; the next Postings call rescans.
//
// Memory is bounded by an optional byte budget with LRU eviction. Eviction
// is deferred to explicit Trim() calls so that references returned by
// Postings stay valid while a lattice build holds them; the session driver
// trims between lattice episodes.
#ifndef FALCON_RELATIONAL_POSTING_INDEX_H_
#define FALCON_RELATIONAL_POSTING_INDEX_H_

#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/row_set.h"
#include "relational/table.h"

namespace falcon {

struct PostingIndexOptions {
  /// Maintain cached bitmaps in place on cell updates (ApplyDelta) instead
  /// of requiring column invalidation.
  bool delta_maintenance = true;
  /// Cache size cap in bytes (0 = unbounded). Enforced by Trim(), which
  /// evicts least-recently-used entries.
  size_t byte_budget = 0;
};

/// Counters surfaced through SessionMetrics and the benches.
struct PostingIndexStats {
  size_t hits = 0;        ///< Postings served from cache.
  size_t misses = 0;      ///< Postings that scanned the table.
  size_t delta_rows = 0;  ///< Row-bit updates applied by delta maintenance.
  size_t evictions = 0;   ///< Entries dropped by Trim().
  double scan_ms = 0.0;   ///< Time spent in table scans (fills).
  double delta_ms = 0.0;  ///< Time spent applying deltas.
};

class PostingIndex {
 public:
  /// `table` must outlive the index.
  explicit PostingIndex(const Table* table, PostingIndexOptions options = {})
      : table_(table), options_(options), cache_(table->num_cols()) {}

  PostingIndex(const PostingIndex&) = delete;
  PostingIndex& operator=(const PostingIndex&) = delete;

  bool delta_maintenance() const { return options_.delta_maintenance; }

  /// Rows where `col` equals `v`. First call scans the column; later calls
  /// are cache hits until the entry is invalidated or evicted. The returned
  /// reference stays valid until InvalidateColumn/InvalidateAll/Trim.
  const RowSet& Postings(size_t col, ValueId v);

  /// Batch fill: caches postings for every value of `col` not yet cached in
  /// a single pass over the column (Table::ScanEqualsMulti).
  void Warm(size_t col, const std::vector<ValueId>& values);

  /// Delta maintenance: the caller wrote `new_value` into every row of
  /// `rows` in `col`; `old_value(row)` must return the value each row held
  /// *before* the write (so call this before, or with captured
  /// before-images after, the actual writes). Cached bitmaps are patched in
  /// place: the old value's bitmap loses the row, the new value's gains it.
  /// Uncached values stay uncached.
  template <typename Fn>
  void ApplyDelta(size_t col, const RowSet& rows, Fn&& old_value,
                  ValueId new_value) {
    Timer timer(&stats_.delta_ms);
    ColumnCache& cache = cache_[col];
    if (cache.empty()) return;
    RowSet* new_bits = FindBitmap(cache, new_value);
    // Runs of rows frequently share the old value; memoize the last lookup.
    ValueId memo_value = new_value;
    RowSet* memo_bits = nullptr;
    rows.ForEach([&](size_t r) {
      ValueId old = old_value(r);
      if (old == new_value) return;
      if (old != memo_value) {
        memo_value = old;
        memo_bits = FindBitmap(cache, old);
      }
      if (memo_bits != nullptr) memo_bits->Clear(r);
      if (new_bits != nullptr) new_bits->Set(r);
      ++stats_.delta_rows;
    });
  }

  /// Single-cell delta (the session's manual-fix path).
  void ApplyCellDelta(size_t col, size_t row, ValueId old_value,
                      ValueId new_value);

  /// Drops cached postings of `col` (legacy invalidate-and-rescan mode).
  void InvalidateColumn(size_t col);

  void InvalidateAll();

  /// Enforces the byte budget by evicting LRU entries. Invalidates
  /// references previously returned by Postings; call between episodes.
  void Trim();

  size_t cached_entries() const { return lru_.size(); }
  size_t cached_bytes() const { return bytes_; }
  const PostingIndexStats& stats() const { return stats_; }
  size_t hits() const { return stats_.hits; }
  size_t misses() const { return stats_.misses; }

 private:
  using Key = std::pair<size_t, ValueId>;  // (column, value).
  struct Entry {
    RowSet rows;
    std::list<Key>::iterator lru_it;
  };
  using ColumnCache = std::unordered_map<ValueId, Entry>;

  // Adds elapsed wall time to *sink on destruction.
  class Timer {
   public:
    explicit Timer(double* sink);
    ~Timer();

   private:
    double* sink_;
    double start_ms_;
  };

  RowSet* FindBitmap(ColumnCache& cache, ValueId v) {
    auto it = cache.find(v);
    return it == cache.end() ? nullptr : &it->second.rows;
  }

  size_t EntryBytes() const;
  Entry& Insert(size_t col, ValueId v, RowSet rows);
  void EraseEntry(size_t col, ColumnCache::iterator it);

  const Table* table_;
  PostingIndexOptions options_;
  std::vector<ColumnCache> cache_;
  std::list<Key> lru_;  // Front = most recently used.
  size_t bytes_ = 0;
  PostingIndexStats stats_;
};

}  // namespace falcon

#endif  // FALCON_RELATIONAL_POSTING_INDEX_H_
