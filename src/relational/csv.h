// CSV import/export for Table: RFC-4180-style quoting, first line = header.
#ifndef FALCON_RELATIONAL_CSV_H_
#define FALCON_RELATIONAL_CSV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// Reads a CSV file into a table named `table_name`. The first line supplies
/// attribute names. If `pool` is null a fresh pool is created.
StatusOr<Table> ReadCsv(const std::string& path, const std::string& table_name,
                        std::shared_ptr<ValuePool> pool = nullptr);

/// Parses CSV content from a string (used by tests).
StatusOr<Table> ReadCsvString(const std::string& content,
                              const std::string& table_name,
                              std::shared_ptr<ValuePool> pool = nullptr);

/// Writes the table to `path`, quoting fields that need it.
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace falcon

#endif  // FALCON_RELATIONAL_CSV_H_
