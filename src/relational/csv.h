// CSV import/export for Table: RFC-4180-style quoting, first line = header.
#ifndef FALCON_RELATIONAL_CSV_H_
#define FALCON_RELATIONAL_CSV_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// Controls how malformed rows are handled while reading.
struct CsvReadOptions {
  /// false (default): the first bad row fails the whole read with an
  /// InvalidArgument naming the row, line, and column. true: bad rows are
  /// skipped and counted in the CsvReadReport.
  bool skip_bad_rows = false;
  /// Guard against runaway fields (usually a quoting bug in the producer):
  /// any field longer than this makes the row malformed.
  size_t max_field_bytes = 1 << 20;
};

/// Filled in (when non-null) by the readers below.
struct CsvReadReport {
  size_t rows_read = 0;     ///< Data rows appended to the table.
  size_t rows_skipped = 0;  ///< Malformed rows dropped (skip_bad_rows only).
  std::string first_error;  ///< Diagnostic for the first malformed row.
};

/// Reads a CSV file into a table named `table_name`. The first line supplies
/// attribute names. If `pool` is null a fresh pool is created.
StatusOr<Table> ReadCsv(const std::string& path, const std::string& table_name,
                        std::shared_ptr<ValuePool> pool = nullptr);
StatusOr<Table> ReadCsv(const std::string& path, const std::string& table_name,
                        const CsvReadOptions& options,
                        CsvReadReport* report = nullptr,
                        std::shared_ptr<ValuePool> pool = nullptr);

/// Parses CSV content from a string (used by tests).
StatusOr<Table> ReadCsvString(const std::string& content,
                              const std::string& table_name,
                              std::shared_ptr<ValuePool> pool = nullptr);
StatusOr<Table> ReadCsvString(const std::string& content,
                              const std::string& table_name,
                              const CsvReadOptions& options,
                              CsvReadReport* report = nullptr,
                              std::shared_ptr<ValuePool> pool = nullptr);

/// Writes the table to `path`, quoting fields that need it.
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace falcon

#endif  // FALCON_RELATIONAL_CSV_H_
