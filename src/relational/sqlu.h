// SQLU: the paper's repair language — single-attribute SQL UPDATE statements
// with conjunctive equality WHERE clauses:
//
//   UPDATE T SET A = a' WHERE B1 = v1 AND ... AND Bm = vm
//
// This header defines the query representation, containment reasoning,
// evaluation (affected rows) and application against a Table, plus SQL
// printing. Parsing lives in sqlu_parser.h.
#ifndef FALCON_RELATIONAL_SQLU_H_
#define FALCON_RELATIONAL_SQLU_H_

#include <string>
#include <vector>

#include "common/row_set.h"
#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// One conjunct `attr = value` of a WHERE clause.
struct Predicate {
  std::string attr;
  std::string value;

  bool operator==(const Predicate& other) const {
    return attr == other.attr && value == other.value;
  }
};

/// A conjunctive single-attribute SQL UPDATE statement.
struct SqluQuery {
  std::string table;
  std::string set_attr;
  std::string set_value;
  std::vector<Predicate> where;  ///< Empty = unconditional update.

  /// Sorts WHERE predicates by attribute name (canonical form used by
  /// equality and containment checks).
  void Canonicalize();

  /// Renders the statement as SQL text.
  std::string ToSql() const;

  bool operator==(const SqluQuery& other) const;
};

/// Returns true iff `specific` ≤ `general` (the paper's Q ≤ Q'): both
/// queries have the same SET clause and every predicate of `general` appears
/// in `specific`. For queries generated from one user repair this coincides
/// with attr(general) ⊆ attr(specific).
bool Contains(const SqluQuery& general, const SqluQuery& specific);

/// Rows the query would change: rows matching the WHERE clause whose current
/// SET-attribute value differs from the SET value (updates that would be
/// no-ops are not "affected" — their repair is empty). Errors if the query
/// references unknown attributes.
StatusOr<RowSet> AffectedRows(const Table& table, const SqluQuery& query);

/// Applies the query, returning the number of changed rows.
StatusOr<size_t> ApplyQuery(Table& table, const SqluQuery& query);

}  // namespace falcon

#endif  // FALCON_RELATIONAL_SQLU_H_
