// Recursive-descent parser for the SQLU fragment:
//
//   UPDATE <ident> SET <ident> = <literal>
//     [WHERE <ident> = <literal> [AND <ident> = <literal>]*] [;]
//
// Literals are single-quoted strings (with '' escaping), double-quoted
// strings, bare identifiers, or numbers. Keywords are case-insensitive.
#ifndef FALCON_RELATIONAL_SQLU_PARSER_H_
#define FALCON_RELATIONAL_SQLU_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "relational/sqlu.h"

namespace falcon {

/// Parses one SQLU statement; returns InvalidArgument on malformed input.
StatusOr<SqluQuery> ParseSqlu(std::string_view sql);

}  // namespace falcon

#endif  // FALCON_RELATIONAL_SQLU_PARSER_H_
