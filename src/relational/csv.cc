#include "relational/csv.h"

#include <fstream>
#include <sstream>

namespace falcon {
namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// trailing newline. Handles quoted fields with embedded commas/newlines.
std::vector<std::string> ParseRecord(const std::string& content, size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < content.size(); ++i) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; handled by the following '\n' if present.
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

bool NeedsQuoting(std::string_view s) {
  return s.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::ostream& os, std::string_view s) {
  if (!NeedsQuoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

StatusOr<Table> ReadCsvString(const std::string& content,
                              const std::string& table_name,
                              std::shared_ptr<ValuePool> pool) {
  size_t pos = 0;
  if (content.empty()) {
    return Status::InvalidArgument("empty CSV content");
  }
  std::vector<std::string> header = ParseRecord(content, &pos);
  Table table(table_name, Schema(header), std::move(pool));
  while (pos < content.size()) {
    std::vector<std::string> record = ParseRecord(content, &pos);
    if (record.size() == 1 && record[0].empty()) continue;  // Blank line.
    if (record.size() != header.size()) {
      std::ostringstream msg;
      msg << "row " << table.num_rows() + 1 << " has " << record.size()
          << " fields, expected " << header.size();
      return Status::InvalidArgument(msg.str());
    }
    table.AppendRow(record);
  }
  return table;
}

StatusOr<Table> ReadCsv(const std::string& path, const std::string& table_name,
                        std::shared_ptr<ValuePool> pool) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), table_name, std::move(pool));
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out << ',';
    WriteField(out, table.schema().attribute(c));
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out << ',';
      WriteField(out, table.CellText(r, c));
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace falcon
