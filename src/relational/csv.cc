#include "relational/csv.h"

#include <fstream>
#include <span>
#include <sstream>
#include <string_view>

namespace falcon {
namespace {

// One physical CSV record plus everything needed to diagnose it.
struct RawRecord {
  std::vector<std::string> fields;
  bool unterminated_quote = false;
  size_t quote_col = 0;  // 1-based field index where the open quote started.
  size_t overlong_col = 0;  // 1-based field index of the first overlong field.
  size_t start_line = 0;    // 1-based physical line where the record starts.
};

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// trailing newline and `line` past any newlines consumed (including ones
// embedded in quoted fields). Handles quoted fields with embedded
// commas/newlines.
RawRecord ParseRecord(const std::string& content, size_t* pos, size_t* line,
                      size_t max_field_bytes) {
  RawRecord rec;
  rec.start_line = *line;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < content.size(); ++i) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++*line;
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      rec.quote_col = rec.fields.size() + 1;
    } else if (c == ',') {
      rec.fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++*line;
      ++i;
      break;
    } else if (c == '\r') {
      // Swallow; handled by the following '\n' if present.
    } else {
      field += c;
    }
    if (rec.overlong_col == 0 && field.size() > max_field_bytes) {
      rec.overlong_col = rec.fields.size() + 1;
    }
  }
  rec.unterminated_quote = in_quotes;
  rec.fields.push_back(std::move(field));
  *pos = i;
  return rec;
}

// Returns an empty string for a good record, else the diagnostic. `row` is
// the 1-based data-row number (the header is not counted).
std::string Diagnose(const RawRecord& rec, size_t row, size_t expected_fields,
                     size_t max_field_bytes) {
  std::ostringstream msg;
  if (rec.unterminated_quote) {
    msg << "unterminated quoted field at row " << row << " (line "
        << rec.start_line << "), column " << rec.quote_col;
  } else if (rec.overlong_col != 0) {
    msg << "field longer than " << max_field_bytes << " bytes at row " << row
        << " (line " << rec.start_line << "), column " << rec.overlong_col;
  } else if (rec.fields.size() != expected_fields) {
    msg << "row " << row << " (line " << rec.start_line << ") has "
        << rec.fields.size() << " fields, expected " << expected_fields;
  }
  return msg.str();
}

bool NeedsQuoting(std::string_view s) {
  return s.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::ostream& os, std::string_view s) {
  if (!NeedsQuoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

StatusOr<Table> ReadCsvString(const std::string& content,
                              const std::string& table_name,
                              const CsvReadOptions& options,
                              CsvReadReport* report,
                              std::shared_ptr<ValuePool> pool) {
  if (content.empty()) {
    return Status::InvalidArgument("empty CSV content");
  }
  size_t pos = 0;
  size_t line = 1;
  RawRecord header =
      ParseRecord(content, &pos, &line, options.max_field_bytes);
  std::string header_error =
      Diagnose(header, 0, header.fields.size(), options.max_field_bytes);
  if (!header_error.empty()) {
    return Status::InvalidArgument("bad CSV header: " + header_error);
  }
  Table table(table_name, Schema(header.fields), std::move(pool));
  size_t row = 0;
  std::vector<std::string_view> views(header.fields.size());
  while (pos < content.size()) {
    RawRecord rec = ParseRecord(content, &pos, &line, options.max_field_bytes);
    if (rec.fields.size() == 1 && rec.fields[0].empty() &&
        !rec.unterminated_quote) {
      continue;  // Blank line.
    }
    ++row;
    std::string error =
        Diagnose(rec, row, header.fields.size(), options.max_field_bytes);
    if (!error.empty()) {
      if (!options.skip_bad_rows) return Status::InvalidArgument(error);
      if (report) {
        ++report->rows_skipped;
        if (report->first_error.empty()) report->first_error = error;
      }
      continue;
    }
    for (size_t c = 0; c < rec.fields.size(); ++c) views[c] = rec.fields[c];
    table.AppendRow(std::span<const std::string_view>(views));
  }
  if (report) report->rows_read = table.num_rows();
  return table;
}

StatusOr<Table> ReadCsvString(const std::string& content,
                              const std::string& table_name,
                              std::shared_ptr<ValuePool> pool) {
  return ReadCsvString(content, table_name, CsvReadOptions{},
                       /*report=*/nullptr, std::move(pool));
}

StatusOr<Table> ReadCsv(const std::string& path, const std::string& table_name,
                        const CsvReadOptions& options, CsvReadReport* report,
                        std::shared_ptr<ValuePool> pool) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), table_name, options, report,
                       std::move(pool));
}

StatusOr<Table> ReadCsv(const std::string& path, const std::string& table_name,
                        std::shared_ptr<ValuePool> pool) {
  return ReadCsv(path, table_name, CsvReadOptions{}, /*report=*/nullptr,
                 std::move(pool));
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out << ',';
    WriteField(out, table.schema().attribute(c));
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out << ',';
      WriteField(out, table.CellText(r, c));
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace falcon
