// A small SELECT engine over Table — the inspection counterpart to SQLU:
//
//   SELECT <cols | *> [, COUNT(*)] FROM T
//     [WHERE a = 'v' AND b = 'w']
//     [GROUP BY col]
//     [ORDER BY col [DESC]]
//     [LIMIT n];
//
// Semantics:
//  * WHERE is a conjunction of equality predicates (the same fragment SQLU
//    uses).
//  * With GROUP BY, the projection may name only the grouped column and
//    COUNT(*).
//  * ORDER BY sorts lexicographically (numerically when every key parses
//    as an integer — covers COUNT(*) ordering).
//
// The result is materialized as a new Table sharing the source's pool.
#ifndef FALCON_RELATIONAL_SELECT_H_
#define FALCON_RELATIONAL_SELECT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

/// Parsed SELECT statement.
struct SelectQuery {
  std::vector<std::string> columns;  ///< Empty with star=true means all.
  bool star = false;
  bool count_star = false;
  std::string table;
  std::vector<Predicate> where;
  std::optional<std::string> group_by;
  std::optional<std::string> order_by;
  bool order_desc = false;
  std::optional<size_t> limit;
};

/// Parses the SELECT fragment; InvalidArgument on malformed input.
StatusOr<SelectQuery> ParseSelect(std::string_view sql);

/// Executes against `table`; the result shares the source ValuePool.
StatusOr<Table> ExecuteSelect(const Table& table, const SelectQuery& query);

/// Convenience: parse + execute.
StatusOr<Table> RunSelect(const Table& table, std::string_view sql);

}  // namespace falcon

#endif  // FALCON_RELATIONAL_SELECT_H_
