// Relation schema: an ordered list of named attributes. FALCON's SQLU
// queries only need attribute identity and ordering, so the schema is
// type-less: every value is a dictionary-encoded string.
#ifndef FALCON_RELATIONAL_SCHEMA_H_
#define FALCON_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace falcon {

/// Ordered attribute list with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attributes);

  /// Number of attributes (the paper's |R|, the relation arity).
  size_t arity() const { return attributes_.size(); }

  const std::string& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Returns the position of `name`, or -1 if absent.
  int AttrIndex(std::string_view name) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<std::string> attributes_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace falcon

#endif  // FALCON_RELATIONAL_SCHEMA_H_
