#include "datagen/workload.h"

#include <atomic>
#include <utility>

#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {

StatusOr<CleaningWorkload> MakeCleaningWorkload(const std::string& name,
                                                double scale) {
  auto rows = [scale](size_t base) {
    size_t n = static_cast<size_t>(static_cast<double>(base) * scale);
    return n < 500 ? 500 : n;
  };

  StatusOr<Dataset> ds = Status::InvalidArgument("unknown dataset " + name);
  if (name == "Soccer") {
    ds = MakeSoccer();
  } else if (name == "Hospital") {
    ds = MakeHospital(rows(10000));
  } else if (name == "Synth10k") {
    ds = MakeSynth(rows(10000));
  } else if (name == "Synth1M") {
    // Paper: 1M tuples. Default harness scale runs 50k; --scale grows it.
    ds = MakeSynth(rows(50000), /*seed=*/29);
  } else if (name == "DBLP") {
    ds = MakeDblp(rows(20000));
  } else if (name == "BUS") {
    ds = MakeBus(rows(12000));
  }
  FALCON_RETURN_IF_ERROR(ds.status());

  FALCON_ASSIGN_OR_RETURN(auto dirty, InjectErrors(ds->clean, ds->error_spec));

  CleaningWorkload w;
  w.name = name;
  w.clean = std::move(ds->clean);
  w.dirty = std::move(dirty.dirty);
  w.errors = dirty.errors.size();
  w.patterns = dirty.injected_patterns.size();
  w.snapshot_id = NextWorkloadSnapshotId();
  return w;
}

uint64_t NextWorkloadSnapshotId() {
  // Each built instance gets a fresh process-unique generation id: two
  // calls with identical inputs produce bit-identical tables but distinct
  // snapshots, so shared read caches never alias across owners.
  static std::atomic<uint64_t> next_snapshot_id{1};
  return next_snapshot_id.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::string> AllWorkloadNames() {
  return {"Soccer", "Hospital", "Synth10k", "Synth1M", "DBLP", "BUS"};
}

}  // namespace falcon
