// Declarative workload specs: a JSON document describes a synthetic
// dataset (field distributions and FD structure), its error-injection
// profile, and a streaming-append schedule; the generator materializes it
// chunk-at-a-time without ever holding more than one chunk of raw strings.
//
// Determinism is the contract that makes specs usable for benchmarks and
// equivalence tests: every cell is a pure function of (seed, row, field)
// — stateless SplitMix64 streams, never a shared RNG — and derived fields
// hash their parents' *domain indexes* rather than interned ids. The same
// (spec, seed) therefore yields byte-identical tables (TableContentsCrc)
// no matter how generation is chunked or how many threads compute the
// chunks; only the serial per-chunk interning order touches the pool.
//
// Spec format (parsed with common/json.h):
//
//   {
//     "name": "stream",
//     "seed": 9,
//     "rows": 100000,
//     "fields": [
//       {"name": "id",    "dist": "unique",  "prefix": "R"},
//       {"name": "city",  "dist": "zipf",    "domain": 500, "skew": 1.0,
//        "prefix": "City"},
//       {"name": "state", "dist": "derived", "parents": ["city"],
//        "domain": 50, "prefix": "St"},
//       {"name": "flag",  "dist": "dictionary",
//        "values": ["yes", "no", "maybe"]},
//       {"name": "grade", "dist": "uniform", "domain": 10, "prefix": "G"}
//     ],
//     "errors": {
//       "rules": [{"lhs": ["city"], "rhs": "state", "patterns": 5,
//                  "errors_per_pattern": 10}],
//       "format_patterns": 2,
//       "random_errors": 50
//     },
//     "append": {"batches": 4, "rows_per_batch": 25000,
//                "error_rate": 0.001}
//   }
//
// A "derived" field is an exact function of its parents, so every
// {parents} → derived is an FD of the clean data by construction — the
// structure the error injector's rule errors and the violation detector
// exploit.
#ifndef FALCON_DATAGEN_SPEC_H_
#define FALCON_DATAGEN_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "datagen/workload.h"
#include "relational/table.h"

namespace falcon {

class ThreadPool;

/// One generated attribute.
struct SpecField {
  enum class Dist {
    kUnique,      ///< Row-unique key "R_<row>".
    kUniform,     ///< Uniform draw from a fixed domain.
    kZipf,        ///< Zipf-skewed draw (smaller indexes more likely).
    kDictionary,  ///< Draw from an explicit value list.
    kDerived,     ///< Exact hash function of earlier fields (an FD).
  };

  std::string name;
  Dist dist = Dist::kUniform;
  /// Domain size for uniform/zipf/derived (dictionary uses values.size()).
  size_t domain = 10;
  /// Zipf exponent; also applies to dictionary draws when > 0.
  double skew = 1.0;
  /// Explicit domain for kDictionary.
  std::vector<std::string> values;
  /// Parent field names for kDerived; must precede this field.
  std::vector<std::string> parents;
  /// Value prefix for synthesized domains, e.g. "City" → "City_17".
  std::string prefix;
};

/// One rule-error recipe of the injection profile (BART rule errors along
/// a spec-guaranteed FD).
struct SpecRuleError {
  std::vector<std::string> lhs;
  std::string rhs;
  size_t patterns = 1;
  size_t errors_per_pattern = 10;
};

/// Error-injection profile for the base instance (errorgen/injector.h
/// semantics) plus the per-cell rate applied to appended batches.
struct SpecErrorProfile {
  std::vector<SpecRuleError> rules;
  size_t format_patterns = 0;
  size_t random_errors = 0;
  uint64_t seed = 1;
};

/// Streaming-append schedule: after the base `rows`, the workload grows by
/// `batches` × `rows_per_batch` rows; each appended cell is independently
/// corrupted with probability `error_rate` (deterministic in (seed, row,
/// field) — a schedule replays identically however it is chunked).
struct SpecAppendSchedule {
  size_t batches = 0;
  size_t rows_per_batch = 0;
  double error_rate = 0.0;
};

/// Whole-workload recipe.
struct GeneratorSpec {
  std::string name = "spec";
  uint64_t seed = 1;
  size_t rows = 1000;
  std::vector<SpecField> fields;
  SpecErrorProfile errors;
  SpecAppendSchedule append;

  /// Validates and decodes a parsed JSON spec.
  static StatusOr<GeneratorSpec> FromJson(const JsonValue& json);
  /// Parses JSON text (one object) into a spec.
  static StatusOr<GeneratorSpec> Parse(std::string_view text);
  /// Total rows after the full append schedule runs.
  size_t FinalRows() const {
    return rows + append.batches * append.rows_per_batch;
  }
};

/// A generated append batch: clean and dirty column chunks (column-major
/// interned ids, ready for Table::AppendBatch / CleaningSession::
/// AppendBatch) and the number of corrupted cells.
struct SpecAppendChunk {
  std::vector<std::vector<ValueId>> clean;
  std::vector<std::vector<ValueId>> dirty;
  size_t errors = 0;
};

/// Chunk-at-a-time deterministic generator over one spec. All synthesized
/// domains are pre-interned serially at construction; chunk generation
/// then computes domain indexes (parallelizable, pure) and interns only
/// row-unique values — in row order through ValuePool::InternBatch — so
/// the pool contents are identical for any chunking or thread count.
class SpecGenerator {
 public:
  /// Validates the spec (field kinds, parent ordering, dictionary sizes)
  /// and pre-interns every synthesized domain into `pool` (a fresh pool
  /// when null).
  static StatusOr<SpecGenerator> Make(const GeneratorSpec& spec,
                                      std::shared_ptr<ValuePool> pool = {});

  /// An empty table with the spec's schema, sharing the generator's pool.
  Table NewTable() const;

  /// Appends rows [table.num_rows(), table.num_rows() + n) of the spec's
  /// deterministic infinite table to `table` (which must use this
  /// generator's pool). `tp` parallelizes the pure index computation;
  /// null uses ThreadPool::Global().
  Status AppendRows(Table* table, size_t n, ThreadPool* tp = nullptr) const;

  /// Clean column chunk for absolute rows [begin, begin + n).
  StatusOr<std::vector<std::vector<ValueId>>> Chunk(
      size_t begin, size_t n, ThreadPool* tp = nullptr) const;

  /// Clean + dirty column chunks for rows [begin, begin + n), with each
  /// cell corrupted at the schedule's `error_rate` (dirty value =
  /// clean value + "_err", the ground truth an appended session cleans).
  StatusOr<SpecAppendChunk> AppendBatchChunk(size_t begin, size_t n,
                                             ThreadPool* tp = nullptr) const;

  const GeneratorSpec& spec() const { return spec_; }
  const std::shared_ptr<ValuePool>& pool() const { return pool_; }

 private:
  SpecGenerator(GeneratorSpec spec, std::shared_ptr<ValuePool> pool)
      : spec_(std::move(spec)), pool_(std::move(pool)) {}

  /// Domain index of (row, field) given that field's parents' indexes.
  uint64_t CellIndex(size_t field, size_t row,
                     const std::vector<uint64_t>& row_indexes) const;

  GeneratorSpec spec_;
  std::shared_ptr<ValuePool> pool_;
  /// Per-field SplitMix64 salt (decorrelates fields sharing the seed).
  std::vector<uint64_t> salts_;
  /// Pre-interned ids of each synthesized/dictionary domain (empty for
  /// kUnique fields, whose values are interned per chunk).
  std::vector<std::vector<ValueId>> domain_ids_;
  /// Parent column indexes per derived field.
  std::vector<std::vector<size_t>> parent_cols_;
};

/// Builds the base workload of a spec: generates the clean instance
/// chunk-at-a-time, runs the error-injection profile over it, and stamps a
/// fresh snapshot id. The append schedule is NOT executed here — callers
/// stream it via SpecGenerator::AppendBatchChunk into
/// CleaningSession::AppendBatch (or Table::AppendBatch for rebuilds).
/// Returns the generator alongside so appended chunks draw from the same
/// pre-interned pool.
struct SpecWorkload {
  CleaningWorkload workload;
  SpecGenerator generator;
};
StatusOr<SpecWorkload> MakeSpecWorkload(const GeneratorSpec& spec,
                                        ThreadPool* tp = nullptr,
                                        size_t chunk_rows = 65536);

}  // namespace falcon

#endif  // FALCON_DATAGEN_SPEC_H_
