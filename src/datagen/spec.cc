#include "datagen/spec.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash (53 mantissa bits).
double ToUnit(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Stateless inverse-CDF Zipf index in [0, n) — the same approximation as
/// Rng::NextSkewed, driven by a hashed uniform instead of an RNG stream so
/// any cell can be sampled independently of all others.
uint64_t ZipfIndex(uint64_t n, double skew, double u) {
  if (n <= 1) return 0;
  double x = (skew == 1.0)
                 ? std::pow(static_cast<double>(n), u)
                 : std::pow((std::pow(static_cast<double>(n), 1.0 - skew) -
                             1.0) * u + 1.0,
                            1.0 / (1.0 - skew));
  uint64_t idx = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
  return idx >= n ? n - 1 : idx;
}

std::string MakeValue(const std::string& prefix, uint64_t index) {
  return prefix + "_" + std::to_string(index);
}

StatusOr<SpecField::Dist> ParseDist(const std::string& s) {
  if (s == "unique") return SpecField::Dist::kUnique;
  if (s == "uniform") return SpecField::Dist::kUniform;
  if (s == "zipf") return SpecField::Dist::kZipf;
  if (s == "dictionary") return SpecField::Dist::kDictionary;
  if (s == "derived") return SpecField::Dist::kDerived;
  return Status::InvalidArgument("unknown field dist \"" + s + "\"");
}

StatusOr<std::vector<std::string>> StringArray(const JsonValue& v,
                                               const char* what) {
  if (!v.is_array() || v.items().empty()) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a non-empty array of strings");
  }
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(std::string(what) +
                                     " must contain only strings");
    }
    out.push_back(item.AsString());
  }
  return out;
}

}  // namespace

StatusOr<GeneratorSpec> GeneratorSpec::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("spec must be a JSON object");
  }
  GeneratorSpec spec;
  spec.name = json.GetString("name", "spec");
  spec.seed = static_cast<uint64_t>(json.GetInt("seed", 1));
  int64_t rows = json.GetInt("rows", 1000);
  if (rows <= 0) return Status::InvalidArgument("rows must be positive");
  spec.rows = static_cast<size_t>(rows);

  const JsonValue* fields = json.Find("fields");
  if (fields == nullptr || !fields->is_array() || fields->items().empty()) {
    return Status::InvalidArgument("spec needs a non-empty fields array");
  }
  for (const JsonValue& f : fields->items()) {
    if (!f.is_object()) {
      return Status::InvalidArgument("each field must be a JSON object");
    }
    SpecField field;
    field.name = f.GetString("name");
    if (field.name.empty()) {
      return Status::InvalidArgument("field missing name");
    }
    FALCON_ASSIGN_OR_RETURN(field.dist,
                            ParseDist(f.GetString("dist", "uniform")));
    field.domain = static_cast<size_t>(f.GetInt("domain", 10));
    // Zipf defaults to the classic exponent; dictionaries default to
    // uniform draws unless a skew is spelled out.
    field.skew = f.GetDouble(
        "skew", field.dist == SpecField::Dist::kZipf ? 1.0 : 0.0);
    field.prefix = f.GetString("prefix", field.name);
    if (field.dist == SpecField::Dist::kDictionary) {
      const JsonValue* values = f.Find("values");
      if (values == nullptr) {
        return Status::InvalidArgument("dictionary field " + field.name +
                                       " needs a values array");
      }
      FALCON_ASSIGN_OR_RETURN(field.values,
                              StringArray(*values, "dictionary values"));
      field.domain = field.values.size();
    }
    if (field.dist == SpecField::Dist::kDerived) {
      const JsonValue* parents = f.Find("parents");
      if (parents == nullptr) {
        return Status::InvalidArgument("derived field " + field.name +
                                       " needs a parents array");
      }
      FALCON_ASSIGN_OR_RETURN(field.parents,
                              StringArray(*parents, "parents"));
    }
    spec.fields.push_back(std::move(field));
  }

  if (const JsonValue* errors = json.Find("errors"); errors != nullptr) {
    if (!errors->is_object()) {
      return Status::InvalidArgument("errors must be a JSON object");
    }
    spec.errors.format_patterns =
        static_cast<size_t>(errors->GetInt("format_patterns", 0));
    spec.errors.random_errors =
        static_cast<size_t>(errors->GetInt("random_errors", 0));
    spec.errors.seed = static_cast<uint64_t>(errors->GetInt("seed", 1));
    if (const JsonValue* rules = errors->Find("rules"); rules != nullptr) {
      if (!rules->is_array()) {
        return Status::InvalidArgument("errors.rules must be an array");
      }
      for (const JsonValue& r : rules->items()) {
        if (!r.is_object()) {
          return Status::InvalidArgument("each rule must be a JSON object");
        }
        SpecRuleError rule;
        const JsonValue* lhs = r.Find("lhs");
        if (lhs == nullptr) {
          return Status::InvalidArgument("rule missing lhs");
        }
        FALCON_ASSIGN_OR_RETURN(rule.lhs, StringArray(*lhs, "rule lhs"));
        rule.rhs = r.GetString("rhs");
        if (rule.rhs.empty()) {
          return Status::InvalidArgument("rule missing rhs");
        }
        rule.patterns = static_cast<size_t>(r.GetInt("patterns", 1));
        rule.errors_per_pattern =
            static_cast<size_t>(r.GetInt("errors_per_pattern", 10));
        spec.errors.rules.push_back(std::move(rule));
      }
    }
  }

  if (const JsonValue* append = json.Find("append"); append != nullptr) {
    if (!append->is_object()) {
      return Status::InvalidArgument("append must be a JSON object");
    }
    spec.append.batches =
        static_cast<size_t>(append->GetInt("batches", 0));
    spec.append.rows_per_batch =
        static_cast<size_t>(append->GetInt("rows_per_batch", 0));
    spec.append.error_rate = append->GetDouble("error_rate", 0.0);
    if (spec.append.error_rate < 0.0 || spec.append.error_rate > 1.0) {
      return Status::InvalidArgument("append.error_rate must be in [0, 1]");
    }
  }
  return spec;
}

StatusOr<GeneratorSpec> GeneratorSpec::Parse(std::string_view text) {
  FALCON_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  return FromJson(json);
}

StatusOr<SpecGenerator> SpecGenerator::Make(const GeneratorSpec& spec,
                                            std::shared_ptr<ValuePool> pool) {
  if (pool == nullptr) pool = std::make_shared<ValuePool>();
  SpecGenerator gen(spec, std::move(pool));
  const std::vector<SpecField>& fields = gen.spec_.fields;

  std::unordered_set<std::string> names;
  for (const SpecField& f : fields) {
    if (!names.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name " + f.name);
    }
    if (f.dist != SpecField::Dist::kUnique && f.domain == 0) {
      return Status::InvalidArgument("field " + f.name +
                                     " needs a non-zero domain");
    }
  }

  gen.parent_cols_.resize(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const SpecField& f = fields[i];
    if (f.dist != SpecField::Dist::kDerived) continue;
    if (f.parents.empty()) {
      return Status::InvalidArgument("derived field " + f.name +
                                     " has no parents");
    }
    for (const std::string& p : f.parents) {
      size_t pc = fields.size();
      for (size_t j = 0; j < i; ++j) {
        if (fields[j].name == p) {
          pc = j;
          break;
        }
      }
      if (pc == fields.size()) {
        return Status::InvalidArgument("derived field " + f.name +
                                       " parent " + p +
                                       " must be an earlier field");
      }
      gen.parent_cols_[i].push_back(pc);
    }
  }

  gen.salts_.resize(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    gen.salts_[i] =
        SplitMix64(gen.spec_.seed * 1315423911ull + i * 2654435761ull);
  }

  // Pre-intern every bounded domain serially, in (field, index) order:
  // chunk generation then assigns ids by pure lookup, which is what makes
  // the pool — and so the tables — chunking- and thread-invariant.
  size_t expected = 0;
  for (const SpecField& f : fields) {
    if (f.dist != SpecField::Dist::kUnique) expected += f.domain;
  }
  gen.pool_->Reserve(expected);
  gen.domain_ids_.resize(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const SpecField& f = fields[i];
    if (f.dist == SpecField::Dist::kUnique) continue;
    std::vector<ValueId>& ids = gen.domain_ids_[i];
    ids.reserve(f.domain);
    for (size_t v = 0; v < f.domain; ++v) {
      ids.push_back(f.dist == SpecField::Dist::kDictionary
                        ? gen.pool_->Intern(f.values[v])
                        : gen.pool_->Intern(MakeValue(f.prefix, v)));
    }
  }
  return gen;
}

Table SpecGenerator::NewTable() const {
  std::vector<std::string> names;
  names.reserve(spec_.fields.size());
  for (const SpecField& f : spec_.fields) names.push_back(f.name);
  return Table(spec_.name, Schema(names), pool_);
}

uint64_t SpecGenerator::CellIndex(
    size_t field, size_t row,
    const std::vector<uint64_t>& row_indexes) const {
  const SpecField& f = spec_.fields[field];
  switch (f.dist) {
    case SpecField::Dist::kUnique:
      return row;
    case SpecField::Dist::kUniform:
      return SplitMix64(salts_[field] ^
                        (row * 0x9e3779b97f4a7c15ull)) % f.domain;
    case SpecField::Dist::kZipf:
      return ZipfIndex(
          f.domain, f.skew,
          ToUnit(SplitMix64(salts_[field] ^ (row * 0x9e3779b97f4a7c15ull))));
    case SpecField::Dist::kDictionary: {
      uint64_t h = SplitMix64(salts_[field] ^ (row * 0x9e3779b97f4a7c15ull));
      return f.skew > 0.0 ? ZipfIndex(f.domain, f.skew, ToUnit(h))
                          : h % f.domain;
    }
    case SpecField::Dist::kDerived: {
      // Hash the parents' domain indexes, never their interned ids: ids
      // depend on interning history, indexes are pure functions of the
      // row, so derived cells stay chunking-invariant.
      uint64_t h = salts_[field];
      for (size_t pc : parent_cols_[field]) {
        h = SplitMix64(h ^ (row_indexes[pc] + 0x517cc1b7ull));
      }
      return h % f.domain;
    }
  }
  return 0;
}

StatusOr<std::vector<std::vector<ValueId>>> SpecGenerator::Chunk(
    size_t begin, size_t n, ThreadPool* tp) const {
  const size_t arity = spec_.fields.size();
  // Pass 1 (parallel, pure): domain indexes for every cell of the chunk.
  std::vector<std::vector<uint64_t>> indexes(arity,
                                             std::vector<uint64_t>(n));
  ThreadPool& pool = tp != nullptr ? *tp : ThreadPool::Global();
  pool.ParallelFor(n, /*min_grain=*/1024, [&](size_t b, size_t e) {
    std::vector<uint64_t> row_indexes(arity);
    for (size_t i = b; i < e; ++i) {
      for (size_t f = 0; f < arity; ++f) {
        row_indexes[f] = CellIndex(f, begin + i, row_indexes);
        indexes[f][i] = row_indexes[f];
      }
    }
  });

  // Pass 2 (serial): resolve indexes to interned ids. Bounded domains are
  // pure lookups; unique fields intern their fresh values in row order so
  // id assignment is identical however pass 1 was sharded.
  std::vector<std::vector<ValueId>> chunk(arity, std::vector<ValueId>(n));
  std::vector<std::string> storage;
  std::vector<std::string_view> views;
  for (size_t f = 0; f < arity; ++f) {
    const SpecField& field = spec_.fields[f];
    if (field.dist == SpecField::Dist::kUnique) {
      storage.clear();
      storage.reserve(n);
      views.resize(n);
      for (size_t i = 0; i < n; ++i) {
        storage.push_back(MakeValue(field.prefix, indexes[f][i]));
        views[i] = storage.back();
      }
      pool_->InternBatch(std::span<const std::string_view>(views),
                         chunk[f].data());
    } else {
      const std::vector<ValueId>& ids = domain_ids_[f];
      for (size_t i = 0; i < n; ++i) chunk[f][i] = ids[indexes[f][i]];
    }
  }
  return chunk;
}

StatusOr<SpecAppendChunk> SpecGenerator::AppendBatchChunk(
    size_t begin, size_t n, ThreadPool* tp) const {
  SpecAppendChunk out;
  FALCON_ASSIGN_OR_RETURN(out.clean, Chunk(begin, n, tp));
  out.dirty = out.clean;
  double rate = spec_.append.error_rate;
  if (rate <= 0.0) return out;
  // Per-cell corruption, pure in (seed, absolute row, field) — serial and
  // row-major so the "_err" values intern in a chunk-invariant order.
  uint64_t err_salt = SplitMix64(spec_.seed ^ 0xe445282977f0147full);
  const size_t arity = spec_.fields.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < arity; ++f) {
      uint64_t h = SplitMix64(err_salt ^ ((begin + i) * 0x9e3779b97f4a7c15ull +
                                          f * 0xc2b2ae3d27d4eb4full));
      if (ToUnit(h) >= rate) continue;
      std::string wrong(pool_->Get(out.clean[f][i]));
      wrong += "_err";
      out.dirty[f][i] = pool_->Intern(wrong);
      ++out.errors;
    }
  }
  return out;
}

Status SpecGenerator::AppendRows(Table* table, size_t n,
                                 ThreadPool* tp) const {
  if (table->pool() != pool_) {
    return Status::InvalidArgument(
        "table does not share the generator's ValuePool");
  }
  constexpr size_t kChunkRows = 65536;
  size_t begin = table->num_rows();
  size_t done = 0;
  while (done < n) {
    size_t m = std::min(kChunkRows, n - done);
    FALCON_ASSIGN_OR_RETURN(auto chunk, Chunk(begin + done, m, tp));
    table->AppendBatch(chunk);
    done += m;
  }
  return Status::Ok();
}

StatusOr<SpecWorkload> MakeSpecWorkload(const GeneratorSpec& spec,
                                        ThreadPool* tp, size_t chunk_rows) {
  FALCON_ASSIGN_OR_RETURN(SpecGenerator gen, SpecGenerator::Make(spec));
  Table clean = gen.NewTable();
  clean.ReserveRows(spec.rows);
  if (chunk_rows == 0) chunk_rows = 65536;
  for (size_t done = 0; done < spec.rows;) {
    size_t m = std::min(chunk_rows, spec.rows - done);
    FALCON_ASSIGN_OR_RETURN(auto chunk, gen.Chunk(done, m, tp));
    clean.AppendBatch(chunk);
    done += m;
  }

  ErrorSpec error_spec;
  error_spec.seed = spec.errors.seed;
  error_spec.num_format_patterns = spec.errors.format_patterns;
  error_spec.num_random_errors = spec.errors.random_errors;
  for (const SpecRuleError& r : spec.errors.rules) {
    RuleErrorSpec rule;
    rule.rule.lhs = r.lhs;
    rule.rule.rhs = r.rhs;
    rule.num_patterns = r.patterns;
    rule.errors_per_pattern = r.errors_per_pattern;
    error_spec.rule_errors.push_back(std::move(rule));
  }
  FALCON_ASSIGN_OR_RETURN(auto dirty, InjectErrors(clean, error_spec));

  CleaningWorkload w;
  w.name = spec.name;
  w.clean = std::move(clean);
  w.dirty = std::move(dirty.dirty);
  w.errors = dirty.errors.size();
  w.patterns = dirty.injected_patterns.size();
  w.snapshot_id = NextWorkloadSnapshotId();
  return SpecWorkload{std::move(w), std::move(gen)};
}

}  // namespace falcon
