// The five evaluation datasets of the FALCON paper, rebuilt as deterministic
// synthetic generators that mirror each dataset's published shape (arity,
// cardinality, FD structure, and the number of rules / error counts used in
// the paper's experiments), plus the running T_drug example of Table 1.
//
// Real sources (premierleague.com scrape, medicare.gov Hospital Compare, UK
// data.gov BUS schedules, DBLP XML) are not redistributable/fetchable here;
// DESIGN.md documents why these mirrors preserve the experimental behaviour.
#ifndef FALCON_DATAGEN_DATASETS_H_
#define FALCON_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "errorgen/injector.h"
#include "relational/table.h"

namespace falcon {

/// A clean instance bundled with the paper-matched error-injection recipe.
struct Dataset {
  std::string name;
  Table clean;
  ErrorSpec error_spec;
};

/// Soccer: 7 attributes, 1625 tuples, 8 injected rule patterns, ~82 errors.
StatusOr<Dataset> MakeSoccer(uint64_t seed = 11);

/// Hospital: 12 attributes, 124 rule patterns (LHS size 1–2, the paper's
/// "favourable for one-hop" shape), ~2000 errors. `rows` defaults to 10k
/// (paper: 100k) so the full harness stays CI-sized.
StatusOr<Dataset> MakeHospital(size_t rows = 10000, uint64_t seed = 13);

/// BUS: 15 attributes, rules with 1–3 LHS attributes, ~4000 errors.
/// `rows` defaults to 25k (paper: 250k).
StatusOr<Dataset> MakeBus(size_t rows = 25000, uint64_t seed = 17);

/// DBLP: 15 attributes, 69 rule patterns, ~6000 errors. `rows` defaults to
/// 50k (paper: 1M/5M).
StatusOr<Dataset> MakeDblp(size_t rows = 50000, uint64_t seed = 19);

/// Synth: 10 attributes (the paper's ToXgene-style generator), 12 rule
/// schemas with mixed LHS sizes; error volume scales with `rows`.
StatusOr<Dataset> MakeSynth(size_t rows = 10000, uint64_t seed = 23);

/// The paper's Table 1 (T_drug) with its three highlighted errors already
/// present. Returns the *dirty* table; `clean` holds the corrected values.
struct DrugExample {
  Table dirty;
  Table clean;
};
DrugExample MakeDrugExample();

}  // namespace falcon

#endif  // FALCON_DATAGEN_DATASETS_H_
