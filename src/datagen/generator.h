// Generic synthetic table generator. Datasets are described as attribute
// specs: unique keys, skewed categorical draws, and derived attributes that
// are exact functions of one or more parent attributes (so the FDs the
// error injector relies on hold by construction).
#ifndef FALCON_DATAGEN_GENERATOR_H_
#define FALCON_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// How an attribute's values are produced.
struct AttrSpec {
  enum class Kind {
    kUnique,       ///< Row-unique key like "P000017".
    kCategorical,  ///< Skewed draw from a fixed domain.
    kDerived,      ///< Deterministic function of parent attributes.
  };

  std::string name;
  Kind kind = Kind::kCategorical;
  /// Domain size for kCategorical / kDerived (number of distinct values the
  /// derived mapping can produce).
  size_t domain = 10;
  /// Zipf skew for kCategorical (0 = uniform).
  double skew = 0.0;
  /// Parent attribute names for kDerived; must precede this attribute.
  std::vector<std::string> parents;
  /// Value prefix, e.g. "Club" produces "Club_17".
  std::string prefix;
};

/// Whole-dataset recipe.
struct TableSpec {
  std::string name;
  std::vector<AttrSpec> attrs;
  size_t num_rows = 1000;
  uint64_t seed = 7;
  /// Optional schema column order for the emitted table (attribute names).
  /// `attrs` stays in dependency order (parents before children); real
  /// schemas rarely list determinants first, and lattice traversal order
  /// follows the schema. Empty = keep `attrs` order.
  std::vector<std::string> output_order;
};

/// Materializes the spec. Derived attributes are hash functions of their
/// parents' value ids folded into `domain` buckets, so parent-set → child is
/// an exact FD while no strict subset of the parents determines the child
/// (with overwhelming probability for non-trivial domains).
StatusOr<Table> GenerateTable(const TableSpec& spec);

}  // namespace falcon

#endif  // FALCON_DATAGEN_GENERATOR_H_
