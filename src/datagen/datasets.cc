#include "datagen/datasets.h"

#include <algorithm>

#include "datagen/generator.h"

namespace falcon {
namespace {

AttrSpec Unique(std::string name, std::string prefix) {
  AttrSpec a;
  a.name = std::move(name);
  a.kind = AttrSpec::Kind::kUnique;
  a.prefix = std::move(prefix);
  return a;
}

AttrSpec Cat(std::string name, std::string prefix, size_t domain,
             double skew = 0.0) {
  AttrSpec a;
  a.name = std::move(name);
  a.kind = AttrSpec::Kind::kCategorical;
  a.prefix = std::move(prefix);
  a.domain = domain;
  a.skew = skew;
  return a;
}

AttrSpec Derived(std::string name, std::string prefix, size_t domain,
                 std::vector<std::string> parents) {
  AttrSpec a;
  a.name = std::move(name);
  a.kind = AttrSpec::Kind::kDerived;
  a.prefix = std::move(prefix);
  a.domain = domain;
  a.parents = std::move(parents);
  return a;
}

RuleErrorSpec Rule(std::vector<std::string> lhs, std::string rhs,
                   size_t patterns, size_t per_pattern) {
  RuleErrorSpec r;
  r.rule.lhs = std::move(lhs);
  r.rule.rhs = std::move(rhs);
  r.num_patterns = patterns;
  r.errors_per_pattern = per_pattern;
  return r;
}

}  // namespace

StatusOr<Dataset> MakeSoccer(uint64_t seed) {
  TableSpec spec;
  spec.name = "soccer";
  spec.num_rows = 1625;
  spec.seed = seed;
  spec.attrs = {
      Unique("Player", "Player"),
      Cat("Position", "Pos", 4),
      Cat("Club", "Club", 40),
      // Large derived domains keep Club → Stadium/Manager injective, so
      // Manager → Stadium also holds (as on the real data).
      Derived("Stadium", "Stadium", 1000000, {"Club"}),
      Derived("Manager", "Manager", 1000000, {"Club"}),
      Derived("ClubCountry", "Country", 10, {"Stadium"}),
      // Pair-determined attribute: neither Club nor Position alone fixes it.
      Derived("PlayerCountry", "PCountry", 20, {"Club", "Position"}),
  };
  spec.output_order = {"Player", "Club",          "ClubCountry", "Stadium",
                       "Manager", "PlayerCountry", "Position"};
  FALCON_ASSIGN_OR_RETURN(Table clean, GenerateTable(spec));

  Dataset ds;
  ds.name = "Soccer";
  ds.clean = std::move(clean);
  ds.error_spec.seed = seed + 1;
  ds.error_spec.rule_errors = {
      Rule({"Club"}, "Stadium", 1, 10),
      Rule({"Club"}, "Manager", 1, 10),
      Rule({"Stadium"}, "ClubCountry", 1, 10),
      Rule({"Manager"}, "Stadium", 1, 10),
      Rule({"Club"}, "ClubCountry", 1, 10),
      Rule({"Club", "Position"}, "PlayerCountry", 3, 10),
  };
  ds.error_spec.num_random_errors = 2;
  return ds;
}

StatusOr<Dataset> MakeHospital(size_t rows, uint64_t seed) {
  // Rows are hospital × measure facts: ~20 measures per provider.
  size_t providers = std::max<size_t>(rows / 20, 8);
  TableSpec spec;
  spec.name = "hospital";
  spec.num_rows = rows;
  spec.seed = seed;
  spec.attrs = {
      Cat("ProviderNumber", "Prov", providers),
      Derived("HospitalName", "Hosp", 10000000, {"ProviderNumber"}),
      Derived("Address", "Addr", 10000000, {"ProviderNumber"}),
      Derived("ZipCode", "Zip", std::max<size_t>(providers / 2, 4),
              {"ProviderNumber"}),
      Derived("City", "City", 200, {"ZipCode"}),
      Derived("State", "State", 50, {"City"}),
      Derived("CountyName", "County", 150, {"City"}),
      Derived("PhoneNumber", "Phone", 10000000, {"ProviderNumber"}),
      Cat("MeasureCode", "MC", 40),
      Derived("MeasureName", "Measure", 10000000, {"MeasureCode"}),
      Derived("Condition", "Cond", 12, {"MeasureCode"}),
      Cat("Score", "Score", 100),
  };
  // Hospital Compare exports lead with the measure block; the provider
  // block follows. Both blocks are FD-dense (the paper notes the dataset
  // is a highly denormalized join), which is what makes one-hop search
  // competitive here.
  spec.output_order = {"MeasureCode", "MeasureName",  "Condition",
                       "ProviderNumber", "HospitalName", "Address",
                       "City",        "State",        "ZipCode",
                       "CountyName",  "PhoneNumber",  "Score"};
  FALCON_ASSIGN_OR_RETURN(Table clean, GenerateTable(spec));

  // Per-pattern quota scaled to expected group sizes (paper: 124 rules /
  // 2000 errors at 100k rows; same density here).
  size_t zip_group = rows / std::max<size_t>(providers / 2, 4);
  size_t per = std::min<size_t>(16, std::max<size_t>(zip_group / 2, 2));

  Dataset ds;
  ds.name = "Hospital";
  ds.clean = std::move(clean);
  ds.error_spec.seed = seed + 1;
  ds.error_spec.rule_errors = {
      Rule({"ZipCode"}, "City", 20, per),
      Rule({"ZipCode"}, "State", 20, per),
      Rule({"City"}, "CountyName", 12, per),
      Rule({"ProviderNumber"}, "PhoneNumber", 12, per),
      Rule({"MeasureCode"}, "MeasureName", 20, per),
      Rule({"MeasureCode"}, "Condition", 20, per),
      Rule({"City"}, "State", 10, per),
      Rule({"Address", "City"}, "State", 10, per),
  };
  ds.error_spec.num_random_errors = 16;
  return ds;
}

StatusOr<Dataset> MakeBus(size_t rows, uint64_t seed) {
  TableSpec spec;
  spec.name = "bus";
  spec.num_rows = rows;
  spec.seed = seed;
  // The derived attributes deliberately avoid sharing exact parent sets:
  // two siblings of the same parents would be interchangeable proxies and
  // would hand one-hop traversals shortcut paths the real data does not
  // have (on the real BUS data one-hop search performs near-manually,
  // Table 6).
  spec.attrs = {
      Cat("RouteId", "Route", 50),
      Cat("Direction", "Dir", 2),
      Cat("DayType", "Day", 3),
      Cat("Timeband", "TB", 24),
      Derived("Operator", "Oper", 15, {"RouteId"}),
      Derived("Destination", "Dest", 90, {"RouteId", "Direction"}),
      Derived("ServiceCode", "Svc", 140, {"RouteId", "DayType"}),
      Derived("VehicleType", "Veh", 40, {"Operator", "DayType"}),
      Cat("Locality", "Loc", 80),
      Derived("AdminArea", "Area", 15, {"Locality"}),
      Derived("NoteCode", "Note", 100, {"Locality", "Direction"}),
      Cat("StopCode", "Stop", 250),
      Derived("StopName", "SName", 10000000, {"StopCode"}),
      Cat("StopLat", "Lat", 5000),
      Cat("RecordType", "RT", 4),
  };
  spec.output_order = {"RecordType", "Timeband",   "StopLat",  "Operator",
                       "Destination", "ServiceCode", "VehicleType",
                       "AdminArea",  "NoteCode",   "StopName", "StopCode",
                       "Locality",   "DayType",    "Direction", "RouteId"};
  FALCON_ASSIGN_OR_RETURN(Table clean, GenerateTable(spec));

  // Target ~4000 errors over 48 patterns, scaled with table size.
  size_t pair_group = rows / 100;  // RouteId × Direction combos.
  size_t per = std::max<size_t>(std::min<size_t>(85, pair_group * 2 / 3), 2);

  Dataset ds;
  ds.name = "BUS";
  ds.clean = std::move(clean);
  ds.error_spec.seed = seed + 1;
  ds.error_spec.rule_errors = {
      Rule({"RouteId", "Direction"}, "Destination", 12, per),
      Rule({"RouteId", "DayType"}, "ServiceCode", 6, per),
      Rule({"Operator", "DayType"}, "VehicleType", 6, per),
      Rule({"Locality", "Direction"}, "NoteCode", 6, per),
      Rule({"Locality"}, "AdminArea", 6, per),
      Rule({"StopCode"}, "StopName", 6, per),
      Rule({"RouteId"}, "Operator", 6, per),
  };
  ds.error_spec.num_random_errors = 24;
  return ds;
}

StatusOr<Dataset> MakeDblp(size_t rows, uint64_t seed) {
  TableSpec spec;
  spec.name = "dblp";
  spec.num_rows = rows;
  spec.seed = seed;
  spec.attrs = {
      Unique("Key", "conf/x"),
      Derived("Title", "Title", 100000000, {"Key"}),
      Cat("FirstAuthor", "Author", 5000, 0.7),
      Cat("Venue", "Venue", 100, 0.7),
      Derived("VenueFull", "VFull", 10000000, {"Venue"}),
      Derived("Type", "Type", 4, {"Venue"}),
      Cat("Year", "Y", 10),
      Cat("Pages", "Pg", 400),
      Derived("Publisher", "Pub", 40, {"Venue"}),
      Derived("PublisherCity", "PCity", 30, {"Publisher"}),
      Derived("Issn", "ISSN", 10000000, {"Venue"}),
      Derived("Ee", "http://doi/x", 100000000, {"Key"}),
      // Conference edition location: determined by venue and year jointly
      // (the pair-LHS rules that separate multi-hop from one-hop search).
      Derived("Location", "Loc", 150, {"Venue", "Year"}),
      Derived("LocCountry", "LC", 4, {"Location"}),
      Cat("Volume", "Vol", 120),
  };
  spec.output_order = {"Key",      "Title",      "FirstAuthor", "Venue",
                       "VenueFull", "Type",       "Publisher",
                       "PublisherCity", "Issn",  "Ee",          "Location",
                       "LocCountry", "Pages",    "Volume",      "Year"};
  FALCON_ASSIGN_OR_RETURN(Table clean, GenerateTable(spec));

  // 69 patterns (paper: 69 DBLP rules), mixing single-attribute venue
  // rules with venue×year pair rules.
  size_t venue_group = rows / 100;
  size_t per = std::max<size_t>(std::min<size_t>(85, venue_group / 6), 2);
  size_t pair_group = rows / 1000;
  size_t per_pair = std::max<size_t>(std::min<size_t>(40, pair_group / 2), 2);

  Dataset ds;
  ds.name = "DBLP";
  ds.clean = std::move(clean);
  ds.error_spec.seed = seed + 1;
  ds.error_spec.rule_errors = {
      Rule({"Venue"}, "Publisher", 12, per),
      Rule({"Venue"}, "VenueFull", 12, per),
      Rule({"Venue"}, "Type", 6, per),
      Rule({"Venue"}, "Issn", 12, per),
      Rule({"Publisher"}, "PublisherCity", 7, per),
      Rule({"Venue", "Year"}, "Location", 20, per_pair),
  };
  ds.error_spec.num_random_errors = 30;
  return ds;
}

StatusOr<Dataset> MakeSynth(size_t rows, uint64_t seed) {
  TableSpec spec;
  spec.name = "synth";
  spec.num_rows = rows;
  spec.seed = seed;
  // Three pair-determined targets (A5, A6, A7) plus an "echo" attribute
  // derived from each target. The echoes are strongly associated with
  // their targets without determining them, so the pairwise-correlation
  // ranking cannot simply hand a one-hop traversal the right LHS — the
  // regime where the paper's multi-hop search shines (Fig. 4, Table 6).
  spec.attrs = {
      Unique("A0", "K"),
      Cat("A1", "B", 24),
      Cat("A2", "C", 12),
      Cat("A3", "D", 5),
      Derived("A5", "F", 200, {"A1", "A2"}),
      Derived("A6", "G", 50, {"A2", "A3"}),
      Derived("A7", "H", 100, {"A1", "A3"}),
      Derived("E5", "FE", 12, {"A5"}),
      Derived("E6", "GE", 10, {"A6"}),
      Derived("E7", "HE", 10, {"A7"}),
  };
  // Schema order lists the derived facts before the base dimensions, as a
  // denormalized export would; the FD determinants are not the first
  // columns a traversal encounters.
  spec.output_order = {"A0", "A5", "A6", "A7", "E5",
                       "E6", "E7", "A1", "A2", "A3"};
  FALCON_ASSIGN_OR_RETURN(Table clean, GenerateTable(spec));

  // 12 rule patterns (the paper's 12 Synth rules); per-pattern quotas scale
  // with the corresponding group sizes so larger instances carry more
  // errors (paper: 1640 errors at 10k rows, 15000 at 1M).
  auto group = [&](size_t combos) { return rows / combos; };
  size_t p2a = std::max<size_t>(std::min<size_t>(group(288) * 2 / 3, 300), 2);
  size_t p2b = std::max<size_t>(std::min<size_t>(group(60) * 2 / 3, 300), 2);
  size_t p2c = std::max<size_t>(std::min<size_t>(group(120) * 2 / 3, 300), 2);

  Dataset ds;
  ds.name = "Synth";
  ds.clean = std::move(clean);
  ds.error_spec.seed = seed + 1;
  ds.error_spec.rule_errors = {
      Rule({"A1", "A2"}, "A5", 4, p2a),
      Rule({"A2", "A3"}, "A6", 4, p2b),
      Rule({"A1", "A3"}, "A7", 4, p2c),
  };
  ds.error_spec.num_random_errors = rows / 500;
  return ds;
}

DrugExample MakeDrugExample() {
  Schema schema({"Date", "Molecule", "Laboratory", "Quantity"});
  auto pool = std::make_shared<ValuePool>();
  Table clean("T_drug", schema, pool);
  clean.AppendRow({"11 Nov", "C16H16Cl", "Austin", "200"});
  clean.AppendRow({"12 Nov", "C22H28F", "Austin", "200"});
  clean.AppendRow({"12 Nov", "C24H75S6", "New York", "100"});
  clean.AppendRow({"12 Nov", "statin", "Boston", "200"});
  clean.AppendRow({"13 Nov", "C22H28F", "Austin", "200"});
  clean.AppendRow({"15 Nov", "C17H20N", "Dubai", "150"});

  Table dirty = clean.Clone();
  // The paper's highlighted errors (Table 1): t2 and t5 hold the erroneous
  // "statin" that query Q3 repairs; t4's "statin" (Boston) is correct.
  dirty.SetCellText(1, 1, "statin");    // t2[Molecule]
  dirty.SetCellText(2, 2, "N.Y.");      // t3[Laboratory]
  dirty.SetCellText(2, 3, "1000");      // t3[Quantity]
  dirty.SetCellText(4, 1, "statin");    // t5[Molecule]

  DrugExample ex;
  ex.dirty = std::move(dirty);
  ex.clean = std::move(clean);
  return ex;
}

}  // namespace falcon
