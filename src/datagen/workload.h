// Canonical benchmark/service workloads: a dataset instance plus its
// paper-matched injected errors, built deterministically from (name,
// scale). Both the bench harness and the cleaning service build datasets
// through this one function, so a service session and a serial bench run
// given the same (name, scale) operate on bit-identical tables — the basis
// of the service layer's bit-identity verification.
#ifndef FALCON_DATAGEN_WORKLOAD_H_
#define FALCON_DATAGEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// One dataset instance ready for cleaning runs.
struct CleaningWorkload {
  std::string name;
  Table clean;
  Table dirty;
  size_t errors = 0;    ///< Injected dirty cells.
  size_t patterns = 0;  ///< Injected rule patterns.
  /// Process-unique snapshot generation id, assigned by
  /// MakeCleaningWorkload. The SharedBaseCache for a base is keyed on it,
  /// so sessions can only attach to a cache built over their exact
  /// instance. 0 (a hand-assembled workload) never matches any cache.
  uint64_t snapshot_id = 0;
};

/// Builds one workload by dataset name: Soccer, Hospital, Synth10k,
/// Synth1M, DBLP, BUS. Sizes at scale 1 are CI-sized stand-ins for the
/// paper's instances (documented in EXPERIMENTS.md). Unknown names return
/// InvalidArgument.
StatusOr<CleaningWorkload> MakeCleaningWorkload(const std::string& name,
                                                double scale = 1.0);

/// The paper's six evaluation datasets in its order.
std::vector<std::string> AllWorkloadNames();

/// Next process-unique CleaningWorkload::snapshot_id. Every workload
/// builder (named datasets, spec-driven generation) draws from this one
/// counter so shared read caches never alias instances across builders.
uint64_t NextWorkloadSnapshotId();

}  // namespace falcon

#endif  // FALCON_DATAGEN_WORKLOAD_H_
