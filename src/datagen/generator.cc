#include "datagen/generator.h"

#include <unordered_map>

#include "common/rng.h"

namespace falcon {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string MakeValue(const std::string& prefix, uint64_t index) {
  return prefix + "_" + std::to_string(index);
}

}  // namespace

StatusOr<Table> GenerateTable(const TableSpec& spec) {
  std::vector<std::string> attr_names;
  attr_names.reserve(spec.attrs.size());
  for (const AttrSpec& a : spec.attrs) attr_names.push_back(a.name);
  Table table(spec.name, Schema(attr_names));

  // Resolve parent indexes up front.
  std::vector<std::vector<size_t>> parent_cols(spec.attrs.size());
  for (size_t i = 0; i < spec.attrs.size(); ++i) {
    const AttrSpec& a = spec.attrs[i];
    if (a.kind != AttrSpec::Kind::kDerived) continue;
    if (a.parents.empty()) {
      return Status::InvalidArgument("derived attribute " + a.name +
                                     " has no parents");
    }
    for (const std::string& p : a.parents) {
      int c = table.schema().AttrIndex(p);
      if (c < 0 || static_cast<size_t>(c) >= i) {
        return Status::InvalidArgument(
            "derived attribute " + a.name + " parent " + p +
            " must be an earlier attribute");
      }
      parent_cols[i].push_back(static_cast<size_t>(c));
    }
    if (a.domain == 0) {
      return Status::InvalidArgument("derived attribute " + a.name +
                                     " needs a non-zero domain");
    }
  }

  Rng rng(spec.seed);
  std::vector<ValueId> row(spec.attrs.size());
  // Per-attribute salt so different derived children of the same parents
  // map independently.
  std::vector<uint64_t> salt(spec.attrs.size());
  for (size_t i = 0; i < spec.attrs.size(); ++i) {
    salt[i] = SplitMix64(spec.seed * 1315423911ull + i * 2654435761ull);
  }

  for (size_t r = 0; r < spec.num_rows; ++r) {
    for (size_t i = 0; i < spec.attrs.size(); ++i) {
      const AttrSpec& a = spec.attrs[i];
      switch (a.kind) {
        case AttrSpec::Kind::kUnique: {
          row[i] = table.Intern(MakeValue(a.prefix, r));
          break;
        }
        case AttrSpec::Kind::kCategorical: {
          uint64_t idx = (a.skew > 0.0) ? rng.NextSkewed(a.domain, a.skew)
                                        : rng.NextUint(a.domain);
          row[i] = table.Intern(MakeValue(a.prefix, idx));
          break;
        }
        case AttrSpec::Kind::kDerived: {
          uint64_t h = salt[i];
          for (size_t pc : parent_cols[i]) {
            h = SplitMix64(h ^ (static_cast<uint64_t>(row[pc]) + 0x517cc1b7ull));
          }
          row[i] = table.Intern(MakeValue(a.prefix, h % a.domain));
          break;
        }
      }
    }
    table.AppendRowIds(row);
  }

  if (spec.output_order.empty()) return table;

  // Re-emit columns in the requested schema order.
  if (spec.output_order.size() != spec.attrs.size()) {
    return Status::InvalidArgument("output_order must list every attribute");
  }
  std::vector<size_t> src_cols;
  for (const std::string& name : spec.output_order) {
    int c = table.schema().AttrIndex(name);
    if (c < 0) {
      return Status::InvalidArgument("output_order names unknown attribute " +
                                     name);
    }
    src_cols.push_back(static_cast<size_t>(c));
  }
  Table out(spec.name, Schema(spec.output_order), table.pool());
  std::vector<ValueId> ids(src_cols.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < src_cols.size(); ++i) {
      ids[i] = table.cell(r, src_cols[i]);
    }
    out.AppendRowIds(ids);
  }
  return out;
}

}  // namespace falcon
