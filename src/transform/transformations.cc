#include "transform/transformations.h"

#include <cctype>

#include "common/str_util.h"

namespace falcon {
namespace {

bool IsUpper(std::string_view s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      has_alpha = true;
      if (std::islower(static_cast<unsigned char>(c))) return false;
    }
  }
  return has_alpha;
}

bool IsLower(std::string_view s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      has_alpha = true;
      if (std::isupper(static_cast<unsigned char>(c))) return false;
    }
  }
  return has_alpha;
}

std::string TitleCase(std::string_view s) {
  std::string out(s);
  bool start = true;
  for (char& c : out) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      c = start ? static_cast<char>(std::toupper(
                      static_cast<unsigned char>(c)))
                : static_cast<char>(std::tolower(
                      static_cast<unsigned char>(c)));
      start = false;
    } else {
      start = true;
    }
  }
  return out;
}

class UpperTransformation : public Transformation {
 public:
  std::string name() const override { return "uppercase"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    return ToUpper(input);
  }
};

class LowerTransformation : public Transformation {
 public:
  std::string name() const override { return "lowercase"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    return ToLower(input);
  }
};

class TitleTransformation : public Transformation {
 public:
  std::string name() const override { return "titlecase"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    return TitleCase(input);
  }
};

class TrimTransformation : public Transformation {
 public:
  std::string name() const override { return "trim"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    return std::string(Trim(input));
  }
};

class SeparatorTransformation : public Transformation {
 public:
  SeparatorTransformation(char from, char to) : from_(from), to_(to) {}
  std::string name() const override {
    return std::string("replace '") + from_ + "'->'" + to_ + "'";
  }
  std::optional<std::string> Apply(std::string_view input) const override {
    std::string out(input);
    for (char& c : out) {
      if (c == from_) c = to_;
    }
    return out;
  }

 private:
  char from_;
  char to_;
};

class StripPrefixTransformation : public Transformation {
 public:
  explicit StripPrefixTransformation(std::string prefix)
      : prefix_(std::move(prefix)) {}
  std::string name() const override { return "strip prefix '" + prefix_ + "'"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    if (!StartsWith(input, prefix_)) return std::nullopt;
    return std::string(input.substr(prefix_.size()));
  }

 private:
  std::string prefix_;
};

class StripSuffixTransformation : public Transformation {
 public:
  explicit StripSuffixTransformation(std::string suffix)
      : suffix_(std::move(suffix)) {}
  std::string name() const override { return "strip suffix '" + suffix_ + "'"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    if (input.size() < suffix_.size() ||
        input.substr(input.size() - suffix_.size()) != suffix_) {
      return std::nullopt;
    }
    return std::string(input.substr(0, input.size() - suffix_.size()));
  }

 private:
  std::string suffix_;
};

class AddSuffixTransformation : public Transformation {
 public:
  explicit AddSuffixTransformation(std::string suffix)
      : suffix_(std::move(suffix)) {}
  std::string name() const override { return "add suffix '" + suffix_ + "'"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    return std::string(input) + suffix_;
  }

 private:
  std::string suffix_;
};

class AddPrefixTransformation : public Transformation {
 public:
  explicit AddPrefixTransformation(std::string prefix)
      : prefix_(std::move(prefix)) {}
  std::string name() const override { return "add prefix '" + prefix_ + "'"; }
  std::optional<std::string> Apply(std::string_view input) const override {
    return prefix_ + std::string(input);
  }

 private:
  std::string prefix_;
};

class ConstantTransformation : public Transformation {
 public:
  ConstantTransformation(std::string from, std::string to)
      : from_(std::move(from)), to_(std::move(to)) {}
  std::string name() const override {
    return "constant '" + from_ + "'->'" + to_ + "'";
  }
  std::optional<std::string> Apply(std::string_view input) const override {
    if (input != from_) return std::nullopt;
    return to_;
  }

 private:
  std::string from_;
  std::string to_;
};

}  // namespace

std::vector<std::unique_ptr<Transformation>> InferTransformations(
    std::string_view before, std::string_view after) {
  std::vector<std::unique_ptr<Transformation>> out;
  auto consider = [&](std::unique_ptr<Transformation> t) {
    std::optional<std::string> result = t->Apply(before);
    if (result.has_value() && *result == after) out.push_back(std::move(t));
  };

  // Case folding.
  if (!IsUpper(before) && IsUpper(after)) {
    consider(std::make_unique<UpperTransformation>());
  }
  if (!IsLower(before) && IsLower(after)) {
    consider(std::make_unique<LowerTransformation>());
  }
  consider(std::make_unique<TitleTransformation>());

  // Whitespace.
  consider(std::make_unique<TrimTransformation>());

  // Separator swaps between common delimiter characters.
  const char separators[] = {'_', '-', ' ', '.', '/'};
  for (char from : separators) {
    if (before.find(from) == std::string_view::npos) continue;
    for (char to : separators) {
      if (from == to) continue;
      consider(std::make_unique<SeparatorTransformation>(from, to));
    }
  }

  // Prefix / suffix edits.
  if (after.size() < before.size()) {
    if (before.substr(before.size() - after.size()) == after) {
      consider(std::make_unique<StripPrefixTransformation>(
          std::string(before.substr(0, before.size() - after.size()))));
    }
    if (before.substr(0, after.size()) == after) {
      consider(std::make_unique<StripSuffixTransformation>(
          std::string(before.substr(after.size()))));
    }
  } else if (after.size() > before.size()) {
    if (after.substr(after.size() - before.size()) == before) {
      consider(std::make_unique<AddPrefixTransformation>(
          std::string(after.substr(0, after.size() - before.size()))));
    }
    if (after.substr(0, before.size()) == before) {
      consider(std::make_unique<AddSuffixTransformation>(
          std::string(after.substr(before.size()))));
    }
  }

  // Constant rewrite: always applicable as the last resort.
  out.push_back(std::make_unique<ConstantTransformation>(
      std::string(before), std::string(after)));
  return out;
}

TransformOutcome ApplyToColumn(Table& table, size_t col,
                               const Transformation& t) {
  TransformOutcome outcome;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string_view current = table.CellText(r, col);
    std::optional<std::string> rewritten = t.Apply(current);
    if (!rewritten.has_value()) {
      ++outcome.cells_inapplicable;
    } else if (*rewritten == current) {
      ++outcome.cells_unchanged;
    } else {
      table.SetCellText(r, col, *rewritten);
      ++outcome.cells_changed;
    }
  }
  return outcome;
}

}  // namespace falcon
