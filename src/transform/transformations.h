// String transformations à la OpenRefine / Potter's Wheel: infer a
// reusable text transformation from a single (before → after) repair
// example and apply it column-wide. This is the expressiveness the paper
// ascribes to the data-transformation tools it compares against (Section 7
// "Data transformation"): syntactic rewrites of one attribute, as opposed
// to FALCON's semantic multi-attribute SQLU rules.
//
// Supported transformation families, tried in order of specificity:
//   * case folding            "new york" → "NEW YORK" / "New York"
//   * whitespace trimming     "  Austin " → "Austin"
//   * separator replacement   "New_York" → "New York"
//   * abbreviation expansion  learned token map "N.Y." → "New York"
//   * prefix/suffix edits     "Dr. Smith" → "Smith", "42" → "42 kg"
//   * constant replacement    exact value rewrite (always applicable)
#ifndef FALCON_TRANSFORM_TRANSFORMATIONS_H_
#define FALCON_TRANSFORM_TRANSFORMATIONS_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/table.h"

namespace falcon {

/// A learned, reusable string rewrite.
class Transformation {
 public:
  virtual ~Transformation() = default;

  /// Human-readable description, e.g. "uppercase" or "replace '_'→' '".
  virtual std::string name() const = 0;

  /// Applies the rewrite; nullopt when it does not apply to `input`
  /// (e.g. a suffix edit on a string lacking the suffix).
  virtual std::optional<std::string> Apply(std::string_view input) const = 0;
};

/// Infers candidate transformations turning `before` into `after`, most
/// specific first. The list is never empty: the constant replacement
/// before→after is always a (last-resort) candidate.
std::vector<std::unique_ptr<Transformation>> InferTransformations(
    std::string_view before, std::string_view after);

/// Result of applying a transformation column-wide.
struct TransformOutcome {
  size_t cells_changed = 0;
  size_t cells_unchanged = 0;   ///< Apply returned the same string.
  size_t cells_inapplicable = 0;
};

/// Applies `t` to every cell of `col`, rewriting in place.
TransformOutcome ApplyToColumn(Table& table, size_t col,
                               const Transformation& t);

}  // namespace falcon

#endif  // FALCON_TRANSFORM_TRANSFORMATIONS_H_
