#include "errorgen/cfd.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/str_util.h"

namespace falcon {

std::string FdRule::ToString() const {
  std::string out = "{" + Join(lhs, ", ") + "} -> " + rhs;
  return out;
}

SqluQuery ConstantCfd::ToQuery(const std::string& table_name) const {
  SqluQuery q;
  q.table = table_name;
  q.set_attr = rhs_attr;
  q.set_value = rhs_value;
  for (size_t i = 0; i < lhs_attrs.size(); ++i) {
    q.where.push_back({lhs_attrs[i], lhs_values[i]});
  }
  q.Canonicalize();
  return q;
}

std::string ConstantCfd::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < lhs_attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs_attrs[i] + "=" + lhs_values[i];
  }
  out += ") -> " + rhs_attr + "=" + rhs_value;
  return out;
}

bool FdHolds(const Table& table, const FdRule& rule) {
  std::vector<size_t> lhs_cols;
  for (const std::string& a : rule.lhs) {
    int c = table.schema().AttrIndex(a);
    if (c < 0) return false;
    lhs_cols.push_back(static_cast<size_t>(c));
  }
  int rhs_col = table.schema().AttrIndex(rule.rhs);
  if (rhs_col < 0) return false;

  struct VecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      uint64_t h = 1469598103934665603ull;
      for (ValueId x : v) {
        h ^= x;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<ValueId>, ValueId, VecHash> mapping;
  std::vector<ValueId> key;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    key.clear();
    bool has_null = false;
    for (size_t c : lhs_cols) {
      ValueId v = table.cell(r, c);
      if (v == kNullValueId) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    if (has_null) continue;
    ValueId rhs = table.cell(r, static_cast<size_t>(rhs_col));
    if (rhs == kNullValueId) continue;
    auto [it, inserted] = mapping.try_emplace(key, rhs);
    if (!inserted && it->second != rhs) return false;
  }
  return true;
}

}  // namespace falcon
