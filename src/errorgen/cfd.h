// Rule types shared by the error injector, the dataset generators and the
// RuleLearning baseline.
//
// FdRule is an attribute-level functional dependency X → A that holds on the
// clean instance; the injector corrupts value groups along such rules so
// that a single conjunctive SQLU query can repair each group (the paper's
// BART "rule-based" errors).
//
// ConstantCfd is a constant conditional functional dependency
// (X = x̄ → A = a): the pattern-level object mined by the RuleLearning
// baseline and the unit the paper counts as one "rule" in its experiments.
#ifndef FALCON_ERRORGEN_CFD_H_
#define FALCON_ERRORGEN_CFD_H_

#include <string>
#include <vector>

#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

/// Attribute-level rule X → rhs.
struct FdRule {
  std::vector<std::string> lhs;
  std::string rhs;

  std::string ToString() const;
};

/// Constant CFD: (lhs_attrs = lhs_values) → rhs_attr = rhs_value.
struct ConstantCfd {
  std::vector<std::string> lhs_attrs;
  std::vector<std::string> lhs_values;
  std::string rhs_attr;
  std::string rhs_value;

  /// The SQLU repair query this CFD induces (SET rhs WHERE lhs pattern).
  SqluQuery ToQuery(const std::string& table_name) const;

  std::string ToString() const;
};

/// True iff the FD holds exactly on the table (every LHS value combination
/// maps to a single RHS value). NULL rows are skipped.
bool FdHolds(const Table& table, const FdRule& rule);

}  // namespace falcon

#endif  // FALCON_ERRORGEN_CFD_H_
