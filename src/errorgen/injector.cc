#include "errorgen/injector.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace falcon {
namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

uint64_t CellKey(uint32_t row, uint32_t col) {
  return (static_cast<uint64_t>(row) << 16) | col;
}

/// Produces a typo'd variant of `s`, guaranteed to differ from it.
std::string Mangle(std::string_view s, Rng& rng) {
  std::string out(s);
  if (out.empty()) return "x";
  switch (rng.NextUint(4)) {
    case 0: {  // Swap two adjacent characters.
      if (out.size() >= 2) {
        size_t i = rng.NextUint(out.size() - 1);
        std::swap(out[i], out[i + 1]);
      }
      break;
    }
    case 1: {  // Drop a character.
      if (out.size() >= 2) out.erase(rng.NextUint(out.size()), 1);
      break;
    }
    case 2: {  // Duplicate a character.
      size_t i = rng.NextUint(out.size());
      out.insert(out.begin() + static_cast<ptrdiff_t>(i), out[i]);
      break;
    }
    default: {  // Replace a character.
      size_t i = rng.NextUint(out.size());
      out[i] = static_cast<char>('a' + rng.NextUint(26));
      break;
    }
  }
  if (out == s) out += "_x";
  return out;
}

/// Abbreviation-style format corruption ("New York" → "N.Y.").
/// Alphabetic tokens shrink to their initial; numeric tokens are kept so
/// distinct clean values stay distinct after mangling ("Zip_12" → "Z.12",
/// "Zip_13" → "Z.13").
std::string FormatMangle(std::string_view s) {
  std::string out;
  std::string token;
  auto flush = [&] {
    if (token.empty()) return;
    bool alpha = std::isalpha(static_cast<unsigned char>(token[0])) != 0;
    if (alpha && token.size() > 1) {
      out += token[0];
      out += '.';
    } else {
      out += token;
    }
    token.clear();
  };
  for (char c : s) {
    if (c == ' ' || c == '_' || c == '-') {
      flush();
    } else {
      token += c;
    }
  }
  flush();
  if (out.empty() || out == s) out = std::string(s) + ".";
  return out;
}

}  // namespace

StatusOr<DirtyInstance> InjectErrors(const Table& clean,
                                     const ErrorSpec& spec) {
  DirtyInstance out;
  out.dirty = clean.Clone();
  Table& dirty = out.dirty;
  Rng rng(spec.seed);
  std::unordered_set<uint64_t> corrupted;

  // --- Rule-based errors ------------------------------------------------
  for (size_t ri = 0; ri < spec.rule_errors.size(); ++ri) {
    const RuleErrorSpec& rspec = spec.rule_errors[ri];
    std::vector<size_t> lhs_cols;
    for (const std::string& a : rspec.rule.lhs) {
      int c = clean.schema().AttrIndex(a);
      if (c < 0) {
        return Status::InvalidArgument("rule references unknown attribute " +
                                       a);
      }
      lhs_cols.push_back(static_cast<size_t>(c));
    }
    int rhs_col_i = clean.schema().AttrIndex(rspec.rule.rhs);
    if (rhs_col_i < 0) {
      return Status::InvalidArgument("rule references unknown attribute " +
                                     rspec.rule.rhs);
    }
    size_t rhs_col = static_cast<size_t>(rhs_col_i);
    if (!FdHolds(clean, rspec.rule)) {
      return Status::FailedPrecondition(
          "rule " + rspec.rule.ToString() + " does not hold on clean data");
    }

    // Group rows by LHS value combination.
    std::unordered_map<std::vector<ValueId>, std::vector<uint32_t>, VecHash>
        groups;
    std::vector<ValueId> key;
    for (size_t r = 0; r < clean.num_rows(); ++r) {
      key.clear();
      bool has_null = false;
      for (size_t c : lhs_cols) {
        ValueId v = clean.cell(r, c);
        if (v == kNullValueId) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (has_null || clean.cell(r, rhs_col) == kNullValueId) continue;
      groups[key].push_back(static_cast<uint32_t>(r));
    }

    // Prefer groups big enough for the full per-pattern quota.
    std::vector<const std::vector<uint32_t>*> candidates;
    std::vector<std::vector<ValueId>> candidate_keys;
    for (const auto& [k, rows] : groups) {
      if (rows.size() >= rspec.errors_per_pattern) {
        candidates.push_back(&rows);
        candidate_keys.push_back(k);
      }
    }
    if (candidates.size() < rspec.num_patterns) {
      for (const auto& [k, rows] : groups) {
        if (rows.size() < rspec.errors_per_pattern && rows.size() >= 2) {
          candidates.push_back(&rows);
          candidate_keys.push_back(k);
        }
      }
    }
    if (candidates.size() < rspec.num_patterns) {
      return Status::FailedPrecondition(
          "rule " + rspec.rule.ToString() + " has only " +
          std::to_string(candidates.size()) + " eligible groups, need " +
          std::to_string(rspec.num_patterns));
    }

    // Deterministic choice of pattern groups.
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);

    size_t taken = 0;
    for (size_t oi = 0; oi < order.size() && taken < rspec.num_patterns;
         ++oi) {
      const std::vector<uint32_t>& rows = *candidates[order[oi]];
      const std::vector<ValueId>& lhs_key = candidate_keys[order[oi]];
      ValueId clean_rhs = clean.cell(rows[0], rhs_col);

      // BART-style rule errors: each corrupted cell gets its own value
      // drawn from the *active domain* of the RHS attribute (another
      // group's legitimate value). The wrong values occur legitimately
      // elsewhere in the column, so the whole-column standardization rule
      // `WHERE A = wrong` is semantically invalid — only the LHS-pattern
      // query repairs the group, exactly the paper's "statin" situation.
      auto pick_donor = [&]() {
        for (size_t tries = 0; tries < 10; ++tries) {
          size_t donor = order[rng.NextUint(order.size())];
          ValueId v = clean.cell((*candidates[donor])[0], rhs_col);
          if (v != clean_rhs) return v;
        }
        return kNullValueId;
      };

      std::vector<uint32_t> shuffled = rows;
      rng.Shuffle(shuffled);
      size_t quota = std::min(rspec.errors_per_pattern, shuffled.size());
      size_t injected = 0;
      for (uint32_t r : shuffled) {
        if (injected >= quota) break;
        uint64_t ck = CellKey(r, static_cast<uint32_t>(rhs_col));
        if (corrupted.count(ck)) continue;
        ValueId dirty_rhs = pick_donor();
        if (dirty_rhs == kNullValueId) break;  // Degenerate domain.
        corrupted.insert(ck);
        dirty.set_cell(r, rhs_col, dirty_rhs);
        ErrorCell cell;
        cell.row = r;
        cell.col = static_cast<uint32_t>(rhs_col);
        cell.clean_value = clean_rhs;
        cell.dirty_value = dirty_rhs;
        cell.source = ErrorSource::kRule;
        cell.source_index = static_cast<int>(ri);
        cell.pattern_index = static_cast<int>(taken);
        out.errors.push_back(cell);
        ++injected;
      }
      if (injected == 0) continue;

      ConstantCfd cfd;
      cfd.lhs_attrs = rspec.rule.lhs;
      for (ValueId v : lhs_key) {
        cfd.lhs_values.emplace_back(clean.pool()->Get(v));
      }
      cfd.rhs_attr = rspec.rule.rhs;
      cfd.rhs_value = std::string(clean.pool()->Get(clean_rhs));
      out.injected_patterns.push_back(std::move(cfd));
      ++taken;
    }
    if (taken < rspec.num_patterns) {
      return Status::Internal("could not place all patterns for rule " +
                              rspec.rule.ToString());
    }
  }

  // --- Format (standardization) errors -----------------------------------
  size_t placed_formats = 0;
  std::unordered_set<uint64_t> used_format;  // (col, value) pairs consumed.
  for (size_t attempt = 0;
       attempt < spec.num_format_patterns * 50 &&
       placed_formats < spec.num_format_patterns;
       ++attempt) {
    size_t col = rng.NextUint(clean.num_cols());
    // Pick the value of a random row; frequent values are hit more often.
    uint32_t seed_row = static_cast<uint32_t>(rng.NextUint(clean.num_rows()));
    ValueId v = dirty.cell(seed_row, col);
    if (v == kNullValueId) continue;
    uint64_t fk = (static_cast<uint64_t>(col) << 32) | v;
    if (used_format.count(fk)) continue;

    // Collect occurrences still clean in this column.
    std::vector<uint32_t> rows;
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      if (dirty.cell(r, col) == v &&
          !corrupted.count(CellKey(static_cast<uint32_t>(r),
                                   static_cast<uint32_t>(col)))) {
        rows.push_back(static_cast<uint32_t>(r));
      }
    }
    if (rows.size() < 3) continue;  // Not worth a standardization pattern.
    std::string wrong = FormatMangle(dirty.pool()->Get(v));
    ValueId wrong_id = dirty.Intern(wrong);
    if (wrong_id == v) continue;
    used_format.insert(fk);
    for (uint32_t r : rows) {
      corrupted.insert(CellKey(r, static_cast<uint32_t>(col)));
      dirty.set_cell(r, col, wrong_id);
      ErrorCell cell;
      cell.row = r;
      cell.col = static_cast<uint32_t>(col);
      cell.clean_value = v;
      cell.dirty_value = wrong_id;
      cell.source = ErrorSource::kFormat;
      cell.source_index = static_cast<int>(placed_formats);
      cell.pattern_index = 0;
      out.errors.push_back(cell);
    }
    ++placed_formats;
  }

  // --- Random single-cell errors ------------------------------------------
  for (size_t i = 0; i < spec.num_random_errors; ++i) {
    for (size_t attempt = 0; attempt < 1000; ++attempt) {
      uint32_t r = static_cast<uint32_t>(rng.NextUint(clean.num_rows()));
      uint32_t c = static_cast<uint32_t>(rng.NextUint(clean.num_cols()));
      if (corrupted.count(CellKey(r, c))) continue;
      ValueId v = dirty.cell(r, c);
      if (v == kNullValueId) continue;
      std::string wrong = Mangle(dirty.pool()->Get(v), rng);
      ValueId wrong_id = dirty.Intern(wrong);
      if (wrong_id == v) continue;
      corrupted.insert(CellKey(r, c));
      dirty.set_cell(r, c, wrong_id);
      ErrorCell cell;
      cell.row = r;
      cell.col = c;
      cell.clean_value = v;
      cell.dirty_value = wrong_id;
      cell.source = ErrorSource::kRandom;
      out.errors.push_back(cell);
      break;
    }
  }

  return out;
}

}  // namespace falcon
