// BART-style error injection (Arocena et al., PVLDB 2015), as used by the
// paper to systematically dirty clean instances while recording ground
// truth. Three error kinds are supported:
//
//  * Rule errors — pick value groups along an FD X → A of the clean data
//    and overwrite the group's A cells with one shared wrong value. One
//    group ≡ one constant CFD ≡ one "rule" in the paper's experiment
//    counts; a single conjunctive SQLU repairs the whole group.
//  * Format errors — rewrite every occurrence of one clean value of an
//    attribute into one wrong spelling ("New York" → "N.Y."); repairable by
//    the standardization query `WHERE A = wrong` (what OpenRefine offers).
//  * Random errors — independent single-cell typos with no exploitable
//    pattern; only a cell-specific update fixes them.
#ifndef FALCON_ERRORGEN_INJECTOR_H_
#define FALCON_ERRORGEN_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "errorgen/cfd.h"
#include "relational/table.h"

namespace falcon {

/// Injection recipe for one FD rule.
struct RuleErrorSpec {
  FdRule rule;
  /// Number of distinct LHS-value groups to corrupt (the paper's per-rule
  /// constant patterns).
  size_t num_patterns = 1;
  /// Cells corrupted within each group (capped at group size).
  size_t errors_per_pattern = 10;
};

/// Full injection configuration for a dataset.
struct ErrorSpec {
  std::vector<RuleErrorSpec> rule_errors;
  /// Standardization patterns: (attribute, all-occurrence misspellings).
  size_t num_format_patterns = 0;
  /// Independent single-cell typos.
  size_t num_random_errors = 0;
  uint64_t seed = 1;
};

/// Where an injected error came from.
enum class ErrorSource { kRule, kFormat, kRandom };

/// Ground truth for one injected error cell.
struct ErrorCell {
  uint32_t row = 0;
  uint32_t col = 0;
  ValueId clean_value = kNullValueId;
  ValueId dirty_value = kNullValueId;
  ErrorSource source = ErrorSource::kRandom;
  /// For kRule: index into ErrorSpec::rule_errors; for kFormat: pattern
  /// index; -1 for kRandom.
  int source_index = -1;
  /// For kRule / kFormat: which pattern group within the source.
  int pattern_index = -1;
};

/// A dirtied instance plus its ground truth. `dirty` shares the clean
/// table's ValuePool, so ids are comparable across the two tables.
struct DirtyInstance {
  Table dirty;
  std::vector<ErrorCell> errors;
  /// The constant CFDs corresponding to each injected rule pattern (the
  /// queries an ideal repair process would discover).
  std::vector<ConstantCfd> injected_patterns;
};

/// Injects errors per `spec`. Fails if a rule references unknown attributes,
/// does not hold on the clean table, or has fewer eligible groups than
/// `num_patterns`.
StatusOr<DirtyInstance> InjectErrors(const Table& clean,
                                     const ErrorSpec& spec);

}  // namespace falcon

#endif  // FALCON_ERRORGEN_INJECTOR_H_
