// Umbrella header: the FALCON public API in one include.
//
//   #include "falcon.h"
//
//   auto dataset = falcon::MakeSoccer().value();
//   auto dirty   = falcon::InjectErrors(dataset.clean,
//                                       dataset.error_spec).value();
//   auto metrics = falcon::RunCleaning(dataset.clean, dirty.dirty,
//                                      falcon::SearchKind::kCoDive,
//                                      {}).value();
//
// Individual components can be included directly from their subdirectories
// (relational/, profiling/, core/, ...) for faster builds.
#ifndef FALCON_FALCON_H_
#define FALCON_FALCON_H_

#include "baselines/active_learning.h"
#include "baselines/cfd_miner.h"
#include "baselines/refine.h"
#include "baselines/rule_learning.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/lattice.h"
#include "core/master_oracle.h"
#include "core/oracle.h"
#include "core/repair_log.h"
#include "core/rule_history.h"
#include "core/search.h"
#include "core/search_algorithms.h"
#include "core/session.h"
#include "core/violation_detector.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "errorgen/cfd.h"
#include "errorgen/injector.h"
#include "ml/linear_svm.h"
#include "profiling/correlation.h"
#include "profiling/fd_discovery.h"
#include "relational/csv.h"
#include "relational/posting_index.h"
#include "relational/schema.h"
#include "relational/select.h"
#include "relational/sqlu.h"
#include "relational/sqlu_parser.h"
#include "relational/table.h"
#include "transform/transformations.h"

#endif  // FALCON_FALCON_H_
